//! Run-time kernel management and workload execution (paper §IV.C.2).
//!
//! Executes a request trace against a compiled [`Schedule`]: every GEMM
//! layer is simulated on the `pcnn-gpu` simulator under the schedule's
//! dispatch policy (Priority-SM over `optSM` SMs with power gating for
//! P-CNN/QPE+; plain Round-Robin for the baselines), requests are batched
//! according to the schedule, and per-request latency plus end-to-end
//! energy are accounted.

use std::collections::HashMap;

use pcnn_data::{RequestTrace, WorkloadKind};
use pcnn_gpu::sim::dispatch::simulate_kernel;
use pcnn_gpu::sim::SimCache;
use pcnn_gpu::{DispatchPolicy, EnergyBreakdown, GpuArch};

use crate::error::{Error, Result};
use crate::offline::{Schedule, ScheduleProvider};

/// Simulated cost of one forward pass of the whole network at the
/// schedule's batch size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkCost {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Energy over the pass.
    pub energy: EnergyBreakdown,
}

/// Simulates every layer of `schedule` once and sums time and energy.
/// Grouped-convolution groups run back-to-back (cost multiplied).
pub fn simulate_schedule(arch: &GpuArch, schedule: &Schedule) -> NetworkCost {
    let _span = pcnn_telemetry::span!(
        "runtime.simulate_schedule",
        batch = schedule.batch,
        layers = schedule.layers.len(),
        power_gated = schedule.power_gated
    );
    let mut seconds = 0.0;
    let mut energy = EnergyBreakdown::default();
    for layer in &schedule.layers {
        let policy = if schedule.power_gated {
            layer.psm_policy()
        } else {
            DispatchPolicy::RoundRobin
        };
        let mut cache = SimCache::new();
        let r = simulate_kernel(arch, &layer.kernel, policy, &mut cache);
        let g = layer.groups as f64;
        seconds += r.seconds * g;
        energy = energy.plus(&r.energy.scaled(g));
    }
    NetworkCost { seconds, energy }
}

/// Outcome of executing a whole request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Per-request latency: completion of the request's last image minus
    /// the request's arrival.
    pub latencies: Vec<f64>,
    /// Time from first arrival to last completion.
    pub makespan: f64,
    /// Energy spent computing (what the paper's GPGPU-Sim + GPUWattch
    /// setup measures and what the SoC metric divides by).
    pub energy: EnergyBreakdown,
    /// Additional idle energy between batches (constant platform power
    /// over the non-busy span) — identical across schedulers up to
    /// makespan differences, reported separately.
    pub idle_energy_j: f64,
}

impl ExecutionReport {
    /// Mean per-request latency.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<f64>() / self.latencies.len() as f64
    }

    /// Worst per-request latency.
    pub fn max_latency(&self) -> f64 {
        self.latencies.iter().copied().fold(0.0, f64::max)
    }

    /// The characteristic response time the SoC metric scores: the worst
    /// frame for real-time tasks, the mean response for interactive tasks,
    /// and the makespan for background bursts.
    pub fn response_time(&self, kind: WorkloadKind) -> f64 {
        match kind {
            WorkloadKind::RealTime => self.max_latency(),
            WorkloadKind::Interactive => self.mean_latency(),
            WorkloadKind::Background => self.makespan,
        }
    }
}

/// Executes `trace` under schedules looked up from `provider` (one per
/// needed chunk size — the schedule's batch for full chunks, smaller for
/// the tail).
///
/// Images queue FIFO; a chunk of `batch` images starts when all its images
/// have arrived and the GPU is free. The final partial chunk runs at its
/// own size.
///
/// Any [`ScheduleProvider`] works: an
/// [`OfflineCompiler`](crate::offline::OfflineCompiler) directly, a
/// [`ScheduleCache`](crate::offline::ScheduleCache) shared with other
/// executions, or a closure wrapped in
/// [`FnProvider`](crate::offline::FnProvider). Costs are memoized per
/// chunk size for the duration of the call.
///
/// # Errors
///
/// Returns [`Error::ZeroBatch`] if `batch == 0`, [`Error::EmptyTrace`] if
/// the trace contains no images, [`Error::BatchMismatch`] if the provider
/// returns a schedule whose batch differs from the requested size, and
/// propagates provider errors.
pub fn execute_trace(
    arch: &GpuArch,
    trace: &RequestTrace,
    batch: usize,
    provider: &mut dyn ScheduleProvider,
) -> Result<ExecutionReport> {
    if batch == 0 {
        return Err(Error::ZeroBatch);
    }
    // Flatten images: (arrival, request index).
    let mut images: Vec<(f64, usize)> = Vec::new();
    for (ri, &(at, n)) in trace.requests().iter().enumerate() {
        for _ in 0..n {
            images.push((at, ri));
        }
    }
    if images.is_empty() {
        return Err(Error::EmptyTrace);
    }
    let _span = pcnn_telemetry::span!(
        "runtime.execute_trace",
        batch = batch,
        requests = trace.requests().len(),
        images = images.len()
    );

    let mut costs: HashMap<usize, NetworkCost> = HashMap::new();
    let mut cost_of = |size: usize| -> Result<NetworkCost> {
        if let Some(c) = costs.get(&size) {
            return Ok(*c);
        }
        let schedule = provider.schedule(size)?;
        if schedule.batch != size {
            return Err(Error::BatchMismatch {
                requested: size,
                got: schedule.batch,
            });
        }
        pcnn_telemetry::event!(
            "runtime.schedule",
            batch = size,
            power_gated = schedule.power_gated,
            mean_perforation =
                schedule.perforation.iter().sum::<f64>() / schedule.perforation.len().max(1) as f64
        );
        let c = simulate_schedule(arch, &schedule);
        costs.insert(size, c);
        Ok(c)
    };

    let n_requests = trace.requests().len();
    let mut request_done = vec![0.0f64; n_requests];
    let mut gpu_free = 0.0f64;
    let mut busy = 0.0f64;
    let mut energy = EnergyBreakdown::default();
    let mut idx = 0;
    while idx < images.len() {
        let size = batch.min(images.len() - idx);
        let chunk = &images[idx..idx + size];
        let ready = chunk.last().expect("non-empty chunk").0;
        let cost = cost_of(size)?;
        // Batch occupancy: how full each dispatched chunk actually was.
        pcnn_telemetry::histogram("runtime.batch_occupancy", size as f64 / batch as f64);
        let start = gpu_free.max(ready);
        let finish = start + cost.seconds;
        for &(_, ri) in chunk {
            request_done[ri] = request_done[ri].max(finish);
        }
        gpu_free = finish;
        busy += cost.seconds;
        energy = energy.plus(&cost.energy);
        idx += size;
    }
    let makespan = gpu_free;
    // Idle periods burn the constant platform power only (deep idle).
    let idle_energy_j = (makespan - busy).max(0.0) * arch.energy.constant_w;

    let latencies: Vec<f64> = trace
        .requests()
        .iter()
        .zip(&request_done)
        .map(|(&(at, _), &done)| done - at)
        .collect();
    if pcnn_telemetry::enabled() {
        for &l in &latencies {
            pcnn_telemetry::histogram("runtime.request_latency_s", l);
        }
    }
    Ok(ExecutionReport {
        latencies,
        makespan,
        energy,
        idle_energy_j,
    })
}

/// Panicking shim with the pre-redesign closure signature, kept so
/// out-of-tree callers of the original `execute_trace` migrate at their
/// own pace.
#[deprecated(note = "use `execute_trace` with a `ScheduleProvider`")]
pub fn execute_trace_with(
    arch: &GpuArch,
    trace: &RequestTrace,
    batch: usize,
    mut build: impl FnMut(usize) -> Schedule,
) -> ExecutionReport {
    let mut provider = crate::offline::FnProvider(|size| Ok(build(size)));
    execute_trace(arch, trace, batch, &mut provider).expect("execute_trace failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{FnProvider, OfflineCompiler, ScheduleCache};
    use pcnn_gpu::arch::K20C;
    use pcnn_nn::spec::alexnet;

    fn schedule_builder(batch: usize) -> Schedule {
        let spec = alexnet();
        OfflineCompiler::new(&K20C, &spec)
            .try_compile_batch(batch)
            .unwrap()
    }

    fn run(trace: &RequestTrace, batch: usize) -> ExecutionReport {
        let mut provider = FnProvider(|size| Ok(schedule_builder(size)));
        execute_trace(&K20C, trace, batch, &mut provider).unwrap()
    }

    #[test]
    fn simulate_schedule_positive_cost() {
        let s = schedule_builder(1);
        let c = simulate_schedule(&K20C, &s);
        assert!(c.seconds > 0.0);
        assert!(c.energy.total_j() > 0.0);
    }

    #[test]
    fn interactive_trace_latencies() {
        let trace = RequestTrace::interactive(4, 0.5, 1.0, 7);
        let report = run(&trace, 1);
        assert_eq!(report.latencies.len(), 4);
        // Requests are well separated; each latency equals one batch-1 pass.
        let c = simulate_schedule(&K20C, &schedule_builder(1));
        for &l in &report.latencies {
            assert!((l - c.seconds).abs() < 1e-9, "latency {l} vs {}", c.seconds);
        }
    }

    #[test]
    fn background_burst_batches() {
        let trace = RequestTrace::background(10);
        let report = run(&trace, 4);
        // 3 chunks (4+4+2), one request.
        assert_eq!(report.latencies.len(), 1);
        assert!(report.makespan > 0.0);
        assert_eq!(
            report.response_time(WorkloadKind::Background),
            report.makespan
        );
    }

    #[test]
    fn tail_batch_runs_at_its_own_size() {
        // 10 images at t = 0, batch 4: chunks of 4, 4 and 2 run
        // back-to-back, so the makespan is exactly 2 x cost(4) + cost(2)
        // and the energy is the sum of the three chunk energies.
        let trace = RequestTrace::background(10);
        let report = run(&trace, 4);
        let c4 = simulate_schedule(&K20C, &schedule_builder(4));
        let c2 = simulate_schedule(&K20C, &schedule_builder(2));
        let expected = 2.0 * c4.seconds + c2.seconds;
        assert!(
            (report.makespan - expected).abs() < 1e-9 * expected,
            "makespan {} vs {}",
            report.makespan,
            expected
        );
        let expected_j = 2.0 * c4.energy.total_j() + c2.energy.total_j();
        assert!((report.energy.total_j() - expected_j).abs() < 1e-9 * expected_j);
    }

    #[test]
    fn tail_smaller_than_batch_is_not_padded() {
        // 3 images, batch 8: a single chunk of 3 — never an 8-image pass.
        let trace = RequestTrace::background(3);
        let mut sizes = Vec::new();
        let mut provider = FnProvider(|size| {
            sizes.push(size);
            Ok(schedule_builder(size))
        });
        let report = execute_trace(&K20C, &trace, 8, &mut provider).unwrap();
        assert_eq!(sizes, vec![3]);
        let c3 = simulate_schedule(&K20C, &schedule_builder(3));
        assert!((report.makespan - c3.seconds).abs() < 1e-12);
    }

    #[test]
    fn batching_delays_first_request() {
        // Real-time 30 fps frames, batch 8: the first frame waits for 7
        // more frames before processing starts.
        let trace = RequestTrace::real_time(8, 30.0);
        let batched = run(&trace, 8);
        let single = run(&trace, 1);
        assert!(
            batched.latencies[0] > single.latencies[0] + 7.0 / 30.0 - 1e-6,
            "batched {} vs single {}",
            batched.latencies[0],
            single.latencies[0]
        );
    }

    #[test]
    fn idle_energy_reported_separately() {
        // Two requests 10 s apart: idle energy is ~10 s x constant power,
        // and the compute energy is exactly two batch-1 passes.
        let trace = RequestTrace::interactive(2, 10.0, 10.0, 1);
        let report = run(&trace, 1);
        let compute = simulate_schedule(&K20C, &schedule_builder(1));
        assert!(
            (report.idle_energy_j - 10.0 * K20C.energy.constant_w).abs() / report.idle_energy_j
                < 0.05,
            "idle {}",
            report.idle_energy_j
        );
        assert!(
            (report.energy.total_j() - 2.0 * compute.energy.total_j()).abs()
                < 1e-9 * report.energy.total_j(),
            "compute energy mismatch"
        );
    }

    #[test]
    fn zero_batch_is_an_error() {
        let trace = RequestTrace::background(4);
        let spec = alexnet();
        let mut compiler = OfflineCompiler::new(&K20C, &spec);
        let err = execute_trace(&K20C, &trace, 0, &mut compiler).unwrap_err();
        assert_eq!(err, Error::ZeroBatch);
    }

    #[test]
    fn empty_trace_is_an_error() {
        let trace = RequestTrace::from_requests(WorkloadKind::Interactive, vec![]);
        let spec = alexnet();
        let mut compiler = OfflineCompiler::new(&K20C, &spec);
        let err = execute_trace(&K20C, &trace, 1, &mut compiler).unwrap_err();
        assert_eq!(err, Error::EmptyTrace);
        // A trace of requests that all carry zero images is also empty.
        let trace = RequestTrace::from_requests(WorkloadKind::Interactive, vec![(0.0, 0)]);
        let err = execute_trace(&K20C, &trace, 1, &mut compiler).unwrap_err();
        assert_eq!(err, Error::EmptyTrace);
    }

    #[test]
    fn batch_mismatch_is_an_error() {
        let trace = RequestTrace::background(4);
        // A provider that always compiles batch 1 regardless of the ask.
        let mut wrong = FnProvider(|_| Ok(schedule_builder(1)));
        let err = execute_trace(&K20C, &trace, 2, &mut wrong).unwrap_err();
        assert_eq!(
            err,
            Error::BatchMismatch {
                requested: 2,
                got: 1
            }
        );
    }

    #[test]
    fn schedule_cache_compiles_each_size_once() {
        let mut compiles = 0usize;
        let mut cache = ScheduleCache::new(FnProvider(|size| {
            compiles += 1;
            Ok(schedule_builder(size))
        }));
        let trace = RequestTrace::background(10);
        let a = execute_trace(&K20C, &trace, 4, &mut cache).unwrap();
        let b = execute_trace(&K20C, &trace, 4, &mut cache).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.len(), 2); // sizes 4 and 2
        drop(cache);
        assert_eq!(compiles, 2);
    }
}
