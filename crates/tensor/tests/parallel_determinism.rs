//! Bitwise determinism of the parallel tensor kernels across thread
//! counts.
//!
//! `pcnn_parallel::with_threads` installs a thread-local override, so a
//! 1-thread and an 8-thread run of the same computation can be compared
//! in-process. The split dimensions (row panels of `C`, rows of the
//! im2col matrix) never change any element's accumulation order, so the
//! outputs must be **bitwise** equal — `assert_eq!` on the raw `f32`
//! buffers, no tolerance.

use pcnn_tensor::{gemm, gemm_naive, gemm_nt, gemm_tn, im2col, Conv2dGeometry};
use proptest::prelude::*;

fn pseudo(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as i32 % 1000) as f32 / 64.0
        })
        .collect()
}

fn gemm_at(threads: usize, m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    pcnn_parallel::with_threads(threads, || {
        let mut c = vec![0.0; m * n];
        gemm(m, n, k, a, b, &mut c);
        c
    })
}

/// Shapes that straddle every blocking boundary of the packed GEMM:
/// the 4-row (`MR`) and 8-column (`NR`) microkernel tiles, the 64-row
/// parallel panel (`MC`) and the 256-deep pack block (`KC`) — each at
/// the boundary, one below and one above — plus shapes large enough to
/// cross the serial/parallel work threshold.
const ODD_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (3, 7, 5),
    (4, 8, 16),
    (5, 9, 17),
    (63, 65, 129),
    (64, 8, 256),
    (65, 9, 257),
    (97, 130, 300),
    (130, 17, 513),
];

/// Thread counts the determinism suite sweeps: serial, even and odd
/// partitions, and a pool wider than most of the shapes' row-tile grids
/// (forcing the 2-D partitioner onto the column axis).
const THREAD_SWEEP: &[usize] = &[1, 2, 3, 4, 8];

#[test]
fn gemm_bitwise_equal_across_thread_counts_on_blocking_boundaries() {
    for &(m, n, k) in ODD_SHAPES {
        let a = pseudo(2017, m * k);
        let b = pseudo(4034, k * n);
        let c1 = gemm_at(1, m, n, k, &a, &b);
        for &t in &THREAD_SWEEP[1..] {
            let ct = gemm_at(t, m, n, k, &a, &b);
            assert_eq!(c1, ct, "gemm {m}x{n}x{k} differs between 1 and {t} threads");
        }
    }
}

#[test]
fn gemm_nt_and_tn_bitwise_equal_across_thread_counts() {
    // Shapes big enough (> 64^3 multiply-adds) that the 8-thread run
    // really splits; B is n x k for NT, A is k x m for TN.
    let (m, n, k) = (80, 70, 65);
    let a = pseudo(7, m * k);
    let bt = pseudo(11, n * k);
    let run_nt = |threads| {
        pcnn_parallel::with_threads(threads, || {
            let mut c = vec![0.0; m * n];
            gemm_nt(m, n, k, &a, &bt, &mut c);
            c
        })
    };
    let nt1 = run_nt(1);
    for &t in &THREAD_SWEEP[1..] {
        assert_eq!(nt1, run_nt(t), "gemm_nt differs between 1 and {t} threads");
    }

    let at = pseudo(13, k * m);
    let b = pseudo(17, k * n);
    let run_tn = |threads| {
        pcnn_parallel::with_threads(threads, || {
            let mut c = vec![0.0; m * n];
            gemm_tn(m, n, k, &at, &b, &mut c);
            c
        })
    };
    let tn1 = run_tn(1);
    for &t in &THREAD_SWEEP[1..] {
        assert_eq!(tn1, run_tn(t), "gemm_tn differs between 1 and {t} threads");
    }
}

#[test]
fn im2col_bitwise_equal_across_thread_counts() {
    // 8 channels x 3x3 kernel over 32x32 -> 72 rows x 900 positions =
    // 64800 elements, above the kernel's serial cutoff.
    let geom = Conv2dGeometry::new(8, 32, 32, 3, 1, 1);
    let input = pseudo(23, 8 * 32 * 32);
    let run = |threads: usize| {
        pcnn_parallel::with_threads(threads, || {
            let mut cols = vec![0.0; geom.patch_len() * geom.out_positions()];
            im2col(&geom, &input, &mut cols);
            cols
        })
    };
    assert_eq!(run(1), run(8), "im2col differs across thread counts");
}

proptest! {
    /// Any shape — especially ragged ones around pack/panel boundaries —
    /// yields bitwise-identical gemm output at every thread count in
    /// {1, 2, 3, 4, 8}, and stays numerically close to the serial
    /// triple-loop oracle. Ragged (non-multiple-of-MR/NR/KC/MC) shapes
    /// dominate this range, exercising every partitioner edge.
    #[test]
    fn gemm_threads_agree_on_random_shapes(
        m in 1usize..100,
        n in 1usize..80,
        k in 1usize..140,
        seed in any::<u64>(),
    ) {
        let a = pseudo(seed, m * k);
        let b = pseudo(seed ^ 0xABCD, k * n);
        let c1 = gemm_at(1, m, n, k, &a, &b);
        for &t in &THREAD_SWEEP[1..] {
            let ct = gemm_at(t, m, n, k, &a, &b);
            prop_assert_eq!(&c1, &ct, "threads={}", t);
        }
        let mut oracle = vec![0.0; m * n];
        gemm_naive(m, n, k, &a, &b, &mut oracle);
        for (x, y) in c1.iter().zip(&oracle) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + y.abs()), "{} vs {}", x, y);
        }
    }
}
