//! The five baseline schedulers and P-CNN itself (paper §V.B), plus the
//! evaluation harness that executes each on the GPU simulator and scores
//! the Satisfaction-of-CNN metric (Figs. 13–15).

use pcnn_data::{RequestTrace, WorkloadKind};
use pcnn_gpu::GpuArch;
use pcnn_nn::perforation::PerforationPlan;
use pcnn_nn::spec::NetworkSpec;

use pcnn_kernels::Library;

use crate::error::{Error, Result};
use crate::offline::{library_schedule, FnProvider, OfflineCompiler};
use crate::runtime::{execute_trace, ExecutionReport};
use crate::soc::{score, Soc, SocInputs};
use crate::task::{AppSpec, UserRequirements};
use crate::tuning::TuningPath;

/// The compared scheduling schemes (paper §V.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Non-batching, fastest response, no energy awareness.
    PerformancePreferred,
    /// Training-style big batch: best throughput/energy, worst latency.
    EnergyEfficient,
    /// Least energy subject to the time requirement (time model, no SM
    /// partitioning).
    Qpe,
    /// QPE plus optimal-SM partitioning with power gating (P-CNN without
    /// accuracy tuning).
    QpePlus,
    /// The full P-CNN: QPE+ plus entropy-based accuracy tuning.
    PCnn,
    /// Oracle: profiles every tuning point and batch candidate, keeps the
    /// best actual SoC.
    Ideal,
}

impl SchedulerKind {
    /// All six, in the paper's presentation order.
    pub fn all() -> [SchedulerKind; 6] {
        [
            SchedulerKind::PerformancePreferred,
            SchedulerKind::EnergyEfficient,
            SchedulerKind::Qpe,
            SchedulerKind::QpePlus,
            SchedulerKind::PCnn,
            SchedulerKind::Ideal,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::PerformancePreferred => "Performance-preferred",
            SchedulerKind::EnergyEfficient => "Energy-efficient",
            SchedulerKind::Qpe => "QPE",
            SchedulerKind::QpePlus => "QPE+",
            SchedulerKind::PCnn => "P-CNN",
            SchedulerKind::Ideal => "Ideal",
        }
    }
}

/// Everything a scheduler needs to decide.
#[derive(Debug, Clone)]
pub struct SchedulerContext<'a> {
    /// Target architecture.
    pub arch: &'a GpuArch,
    /// The network's shape-level spec.
    pub spec: &'a NetworkSpec,
    /// The application.
    pub app: &'a AppSpec,
    /// Inferred requirements.
    pub req: UserRequirements,
    /// The batch the training stage used (the energy-efficient scheduler
    /// reuses it; paper §III.B: 128 for AlexNet, 64 for GoogLeNet, 32 for
    /// VGGNet).
    pub training_batch: usize,
    /// Measured tuning path of the network's trainable counterpart (drives
    /// P-CNN's accuracy tuning and the entropy estimates of every
    /// scheduler; see `DESIGN.md`).
    pub tuning_path: &'a TuningPath,
}

/// A scheduler's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Batch size.
    pub batch: usize,
    /// Whether idle SMs are partitioned away and power-gated.
    pub power_gated: bool,
    /// Per-conv-layer perforation rates on the target network.
    pub rates: Vec<f64>,
    /// Expected output entropy under those rates.
    pub entropy: f64,
    /// Index into the tuning path (for calibration).
    pub table_index: usize,
    /// `Some(lib)` when the scheduler runs stock library kernels instead
    /// of P-CNN's offline-tuned ones (the baselines without the
    /// cross-platform compiler).
    pub library: Option<Library>,
}

/// Maps a tuning-path plan measured on the small counterpart network onto
/// the target network's conv layers by normalised depth. A network with
/// no conv layers maps to an empty rate vector.
pub fn map_rates(plan: &PerforationPlan, target_convs: usize) -> Vec<f64> {
    if target_convs == 0 {
        return Vec::new();
    }
    let k = plan.len();
    if k == 0 {
        return vec![0.0; target_convs];
    }
    (0..target_convs)
        .map(|j| {
            let idx = if target_convs == 1 {
                0
            } else {
                (j * (k - 1) + (target_convs - 1) / 2) / (target_convs - 1)
            };
            plan.rate(idx.min(k - 1))
        })
        .collect()
}

/// Produces a scheduler's decision (everything except the Ideal oracle,
/// which needs the trace — see [`evaluate`]).
///
/// # Errors
///
/// Returns [`Error::EmptyTuningPath`] if the context's tuning path has no
/// entries and propagates offline-compilation errors.
pub fn decide(kind: SchedulerKind, ctx: &SchedulerContext<'_>) -> Result<Decision> {
    if ctx.tuning_path.entries.is_empty() {
        return Err(Error::EmptyTuningPath);
    }
    let compiler = OfflineCompiler::new(ctx.arch, ctx.spec);
    let n_convs = ctx.spec.conv_layers().len();
    let base_entropy = ctx.tuning_path.entries[0].entropy;
    let no_rates = vec![0.0; n_convs];
    Ok(match kind {
        SchedulerKind::PerformancePreferred => Decision {
            batch: 1,
            power_gated: false,
            rates: no_rates,
            entropy: base_entropy,
            table_index: 0,
            library: Some(Library::CuBlas),
        },
        SchedulerKind::EnergyEfficient => Decision {
            batch: ctx.training_batch,
            power_gated: false,
            rates: no_rates,
            entropy: base_entropy,
            table_index: 0,
            library: Some(Library::CuBlas),
        },
        SchedulerKind::Qpe => {
            let s = compiler.try_compile(ctx.app, &ctx.req)?;
            Decision {
                batch: s.batch,
                power_gated: false,
                rates: no_rates,
                entropy: base_entropy,
                table_index: 0,
                library: Some(Library::CuBlas),
            }
        }
        SchedulerKind::QpePlus => {
            let s = compiler.try_compile(ctx.app, &ctx.req)?;
            Decision {
                batch: s.batch,
                power_gated: true,
                rates: no_rates,
                entropy: base_entropy,
                table_index: 0,
                library: None,
            }
        }
        SchedulerKind::PCnn => {
            let s = compiler.try_compile(ctx.app, &ctx.req)?;
            let mut idx = ctx
                .tuning_path
                .deepest_index_within(ctx.req.entropy_threshold);
            // Time has the highest priority (§IV): for a real-time task
            // whose deadline cannot be met even with the fastest
            // threshold-respecting kernel, keep taking more aggressive
            // tuning tables — SoC_accuracy pays the entropy penalty, but
            // the deadline (which would otherwise zero the whole score) is
            // met. This is how P-CNN alone satisfies the mobile real-time
            // task in the paper's Fig. 13(b)/15(b).
            if ctx.app.kind == pcnn_data::WorkloadKind::RealTime {
                if let Some(deadline) = ctx.req.t_user() {
                    while idx + 1 < ctx.tuning_path.entries.len() {
                        let rates = map_rates(&ctx.tuning_path.entries[idx].plan, n_convs);
                        let sched = compiler.try_compile_perforated(s.batch, &rates, true)?;
                        let cost = crate::runtime::simulate_schedule(ctx.arch, &sched);
                        if cost.seconds <= deadline {
                            break;
                        }
                        idx += 1;
                    }
                }
            }
            let entry = &ctx.tuning_path.entries[idx];
            Decision {
                batch: s.batch,
                power_gated: true,
                rates: map_rates(&entry.plan, n_convs),
                entropy: entry.entropy,
                table_index: idx,
                library: None,
            }
        }
        SchedulerKind::Ideal => {
            // Without the trace the oracle defaults to P-CNN's decision;
            // `evaluate` performs the profiling search.
            decide(SchedulerKind::PCnn, ctx)?
        }
    })
}

/// A scheduler's evaluated outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The decision that was executed.
    pub decision: Decision,
    /// Execution trace results.
    pub report: ExecutionReport,
    /// The SoC score.
    pub soc: Soc,
}

fn run_decision(
    ctx: &SchedulerContext<'_>,
    trace: &RequestTrace,
    decision: &Decision,
) -> Result<Evaluation> {
    let compiler = OfflineCompiler::new(ctx.arch, ctx.spec);
    let mut provider = FnProvider(|size| match decision.library {
        Some(lib) => Ok(library_schedule(ctx.arch, ctx.spec, lib, size)),
        None => compiler.try_compile_perforated(size, &decision.rates, decision.power_gated),
    });
    let report = execute_trace(ctx.arch, trace, decision.batch, &mut provider)?;
    let response = report.response_time(ctx.app.kind);
    let s = score(
        &ctx.req,
        &SocInputs {
            response_time: response,
            entropy: decision.entropy,
            energy_j: report.energy.total_j(),
        },
    )?;
    Ok(Evaluation {
        decision: decision.clone(),
        report,
        soc: s,
    })
}

/// Executes `kind` on `trace` and scores it. The Ideal oracle profiles
/// every tuning table crossed with a small set of batch candidates and
/// keeps the best actual SoC (paper §V.B.5).
///
/// # Errors
///
/// Propagates [`decide`], execution and scoring errors (an empty trace or
/// tuning path, a zero training batch, a failed compilation).
pub fn evaluate(
    kind: SchedulerKind,
    ctx: &SchedulerContext<'_>,
    trace: &RequestTrace,
) -> Result<Evaluation> {
    if kind != SchedulerKind::Ideal {
        let decision = decide(kind, ctx)?;
        return run_decision(ctx, trace, &decision);
    }
    // Oracle search.
    let base = decide(SchedulerKind::QpePlus, ctx)?;
    let n_convs = ctx.spec.conv_layers().len();
    let mut batches = vec![base.batch, 1, ctx.training_batch];
    batches.sort_unstable();
    batches.dedup();
    let mut best: Option<Evaluation> = None;
    for &batch in &batches {
        for (idx, entry) in ctx.tuning_path.entries.iter().enumerate() {
            for power_gated in [true, false] {
                let decision = Decision {
                    batch,
                    power_gated,
                    rates: map_rates(&entry.plan, n_convs),
                    entropy: entry.entropy,
                    table_index: idx,
                    library: None,
                };
                let ev = run_decision(ctx, trace, &decision)?;
                if best
                    .as_ref()
                    .map(|b| ev.soc.score > b.soc.score)
                    .unwrap_or(true)
                {
                    best = Some(ev);
                }
            }
        }
    }
    Ok(best.expect("oracle evaluated at least one candidate"))
}

/// Builds the request trace the paper's three scenarios use (§V.C).
pub fn scenario_trace(app: &AppSpec, n_requests: usize, seed: u64) -> RequestTrace {
    match app.kind {
        WorkloadKind::Interactive => RequestTrace::interactive(n_requests, 0.8, 2.0, seed),
        WorkloadKind::RealTime => RequestTrace::real_time(n_requests, app.data_rate),
        WorkloadKind::Background => RequestTrace::background(n_requests),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::TuningEntry;
    use pcnn_gpu::arch::K20C;
    use pcnn_nn::spec::alexnet;

    /// A synthetic tuning path (so tests do not need to train a network).
    fn fake_path(n_convs: usize) -> TuningPath {
        let mk = |rates: Vec<f64>, entropy: f64, retained: f64| TuningEntry {
            plan: PerforationPlan::from_rates(rates),
            entropy,
            accuracy: None,
            retained_flops: retained,
            speedup: 1.0 / retained.max(0.2),
        };
        TuningPath {
            entries: vec![
                mk(vec![0.0; n_convs], 0.9, 1.0),
                mk(
                    {
                        let mut r = vec![0.0; n_convs];
                        r[0] = 0.2;
                        r
                    },
                    1.0,
                    0.9,
                ),
                mk(vec![0.3; n_convs], 1.3, 0.7),
                mk(vec![0.5; n_convs], 1.8, 0.5),
            ],
        }
    }

    fn ctx<'a>(
        spec: &'a NetworkSpec,
        app: &'a AppSpec,
        path: &'a TuningPath,
    ) -> SchedulerContext<'a> {
        SchedulerContext {
            arch: &K20C,
            spec,
            app,
            req: UserRequirements::infer(app),
            training_batch: 128,
            tuning_path: path,
        }
    }

    #[test]
    fn map_rates_preserves_extremes() {
        let plan = PerforationPlan::from_rates(vec![0.1, 0.5]);
        let mapped = map_rates(&plan, 5);
        assert_eq!(mapped.len(), 5);
        assert_eq!(mapped[0], 0.1);
        assert_eq!(mapped[4], 0.5);
    }

    #[test]
    fn performance_preferred_is_non_batching() {
        let spec = alexnet();
        let app = AppSpec::age_detection();
        let path = fake_path(5);
        let d = decide(
            SchedulerKind::PerformancePreferred,
            &ctx(&spec, &app, &path),
        )
        .unwrap();
        assert_eq!(d.batch, 1);
        assert!(!d.power_gated);
        assert!(d.rates.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn energy_efficient_uses_training_batch() {
        let spec = alexnet();
        let app = AppSpec::image_tagging();
        let path = fake_path(5);
        let d = decide(SchedulerKind::EnergyEfficient, &ctx(&spec, &app, &path)).unwrap();
        assert_eq!(d.batch, 128);
    }

    #[test]
    fn qpe_plus_gates_qpe_does_not() {
        let spec = alexnet();
        let app = AppSpec::age_detection();
        let path = fake_path(5);
        let c = ctx(&spec, &app, &path);
        assert!(!decide(SchedulerKind::Qpe, &c).unwrap().power_gated);
        assert!(decide(SchedulerKind::QpePlus, &c).unwrap().power_gated);
        assert_eq!(
            decide(SchedulerKind::Qpe, &c).unwrap().batch,
            decide(SchedulerKind::QpePlus, &c).unwrap().batch
        );
    }

    #[test]
    fn pcnn_perforates_within_threshold() {
        let spec = alexnet();
        let app = AppSpec::age_detection(); // threshold 1.20
        let path = fake_path(5);
        let d = decide(SchedulerKind::PCnn, &ctx(&spec, &app, &path)).unwrap();
        assert_eq!(d.table_index, 1); // deepest entry with entropy <= 1.20
        assert!(d.rates.iter().any(|&r| r > 0.0));
        assert!(d.entropy <= 1.20);
    }

    #[test]
    fn pcnn_conservative_for_accuracy_sensitive() {
        let spec = alexnet();
        let app = AppSpec::video_surveillance(30.0); // threshold 1.10
        let path = fake_path(5);
        let d = decide(SchedulerKind::PCnn, &ctx(&spec, &app, &path)).unwrap();
        assert!(d.table_index <= 1, "picked {}", d.table_index);
    }

    #[test]
    fn evaluate_interactive_all_schedulers() {
        let spec = alexnet();
        let app = AppSpec::age_detection();
        let path = fake_path(5);
        let c = ctx(&spec, &app, &path);
        let trace = scenario_trace(&app, 3, 42);
        let perf = evaluate(SchedulerKind::PerformancePreferred, &c, &trace).unwrap();
        let pcnn = evaluate(SchedulerKind::PCnn, &c, &trace).unwrap();
        // Both meet the 100 ms imperceptible bound on a K20.
        assert_eq!(
            perf.soc.time, 1.0,
            "perf latency {:?}",
            perf.report.latencies
        );
        assert_eq!(
            pcnn.soc.time, 1.0,
            "pcnn latency {:?}",
            pcnn.report.latencies
        );
        // P-CNN saves energy (gating + perforation) -> higher SoC.
        assert!(
            pcnn.report.energy.total_j() < perf.report.energy.total_j(),
            "pcnn {} vs perf {}",
            pcnn.report.energy.total_j(),
            perf.report.energy.total_j()
        );
        assert!(pcnn.soc.score > perf.soc.score);
    }

    #[test]
    fn ideal_at_least_matches_pcnn() {
        let spec = alexnet();
        let app = AppSpec::age_detection();
        let path = fake_path(5);
        let c = ctx(&spec, &app, &path);
        let trace = scenario_trace(&app, 2, 7);
        let pcnn = evaluate(SchedulerKind::PCnn, &c, &trace).unwrap();
        let ideal = evaluate(SchedulerKind::Ideal, &c, &trace).unwrap();
        assert!(ideal.soc.score >= pcnn.soc.score * 0.999);
    }

    #[test]
    fn empty_tuning_path_is_a_typed_error() {
        let spec = alexnet();
        let app = AppSpec::age_detection();
        let path = TuningPath { entries: vec![] };
        let c = ctx(&spec, &app, &path);
        assert_eq!(
            decide(SchedulerKind::PerformancePreferred, &c).unwrap_err(),
            Error::EmptyTuningPath
        );
        let trace = scenario_trace(&app, 2, 1);
        assert_eq!(
            evaluate(SchedulerKind::PCnn, &c, &trace).unwrap_err(),
            Error::EmptyTuningPath
        );
    }
}
