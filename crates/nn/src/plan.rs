//! Per-layer convolution algorithm plans produced by the offline tuner.
//!
//! A [`ConvPlan`] records which [`ConvAlgo`] each conv layer of a network
//! should execute — the CPU analogue of the paper's offline per-layer
//! kernel selection. Plans serialize to a compact comma-joined string
//! (`"direct,im2col,winograd,..."`) so the offline stage can record them
//! next to the schedule and the serving stage can reload them.

use pcnn_tensor::ConvAlgo;

use crate::network::Network;
use crate::{Layer, NnError};

/// One convolution algorithm per conv layer, in network order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvPlan {
    algos: Vec<ConvAlgo>,
}

impl ConvPlan {
    /// The baseline plan: every conv layer runs im2col.
    pub fn im2col(n_convs: usize) -> Self {
        Self {
            algos: vec![ConvAlgo::Im2col; n_convs],
        }
    }

    /// A plan from explicit per-layer choices.
    pub fn from_algos(algos: Vec<ConvAlgo>) -> Self {
        Self { algos }
    }

    /// Number of conv layers the plan covers.
    pub fn len(&self) -> usize {
        self.algos.len()
    }

    /// Whether the plan covers zero layers.
    pub fn is_empty(&self) -> bool {
        self.algos.is_empty()
    }

    /// The algorithm for conv layer `ci`.
    pub fn algo(&self, ci: usize) -> ConvAlgo {
        self.algos[ci]
    }

    /// All per-layer choices, in network order.
    pub fn algos(&self) -> &[ConvAlgo] {
        &self.algos
    }

    /// Whether any layer deviates from the im2col baseline.
    pub fn is_baseline(&self) -> bool {
        self.algos.iter().all(|&a| a == ConvAlgo::Im2col)
    }

    /// Serializes as comma-joined algorithm names
    /// (e.g. `"direct,im2col,winograd"`).
    pub fn serialize(&self) -> String {
        self.algos
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses a [`serialize`](Self::serialize)d plan.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Plan`] on an unknown algorithm name.
    pub fn parse(s: &str) -> Result<Self, NnError> {
        if s.trim().is_empty() {
            return Ok(Self { algos: Vec::new() });
        }
        let algos = s
            .split(',')
            .map(|tok| {
                ConvAlgo::parse(tok.trim())
                    .ok_or_else(|| NnError::Plan(format!("unknown conv algorithm {tok:?}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { algos })
    }

    /// Checks the plan against a network: one entry per conv layer, each
    /// algorithm supported by its layer's shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Plan`] describing the first mismatch.
    pub fn validate(&self, net: &Network) -> Result<(), NnError> {
        if self.len() != net.conv_count() {
            return Err(NnError::Plan(format!(
                "plan covers {} conv layers, network has {}",
                self.len(),
                net.conv_count()
            )));
        }
        let mut ci = 0;
        for layer in net.layers() {
            if let Layer::Conv2d(c) = layer {
                let algo = self.algos[ci];
                if !algo.supports(c.geometry()) {
                    return Err(NnError::Plan(format!(
                        "conv layer {ci} ({}x{} stride {}) cannot run {algo}",
                        c.geometry().kernel,
                        c.geometry().kernel,
                        c.geometry().stride
                    )));
                }
                ci += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::tiny_alexnet;

    #[test]
    fn serialize_round_trips() {
        let plan =
            ConvPlan::from_algos(vec![ConvAlgo::Direct, ConvAlgo::Im2col, ConvAlgo::Winograd]);
        let s = plan.serialize();
        assert_eq!(s, "direct,im2col,winograd");
        assert_eq!(ConvPlan::parse(&s).unwrap(), plan);
        assert_eq!(ConvPlan::parse("").unwrap().len(), 0);
    }

    #[test]
    fn parse_rejects_unknown_algorithm() {
        assert!(matches!(
            ConvPlan::parse("im2col,fft"),
            Err(NnError::Plan(_))
        ));
    }

    #[test]
    fn validate_checks_length_and_support() {
        let net = tiny_alexnet(4); // two 3x3 stride-1 convs
        assert!(ConvPlan::im2col(net.conv_count()).validate(&net).is_ok());
        assert!(matches!(
            ConvPlan::im2col(net.conv_count() + 1).validate(&net),
            Err(NnError::Plan(_))
        ));
        // Both convs of tiny_alexnet are 3x3 stride 1, so winograd is valid.
        let wino = ConvPlan::from_algos(vec![ConvAlgo::Winograd; net.conv_count()]);
        assert!(wino.validate(&net).is_ok());
    }

    #[test]
    fn baseline_detection() {
        assert!(ConvPlan::im2col(3).is_baseline());
        assert!(!ConvPlan::from_algos(vec![ConvAlgo::Direct]).is_baseline());
    }
}
