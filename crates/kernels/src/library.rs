//! Kernel-selection and memory policies of the three deep-learning
//! libraries the paper characterizes: cuBLAS (Caffe's default), cuDNN, and
//! Nervana (§III, Tables III and IV).
//!
//! Each library is modelled by (a) which SGEMM tile it launches on each
//! architecture generation — reproducing Table IV — (b) its batch-size
//! constraints (Nervana requires multiples of 32), and (c) its memory
//! workspace behaviour, which determines the out-of-memory cells of
//! Table III (see `pcnn-nn::memory` and `DESIGN.md` §2 for the
//! calibration).

use pcnn_gpu::sim::KernelDesc;
use pcnn_gpu::{GpuArch, Platform};
use pcnn_nn::memory::{estimate, ActivationPrecision, MemoryEstimate, WorkspacePolicy};
use pcnn_nn::spec::{ConvSpec, NetworkSpec};

use crate::sgemm::{
    build_conv_kernel, SgemmConfig, SgemmShape, SgemmVariant, TILE_128X128, TILE_32X128,
    TILE_32X32, TILE_64X128, TILE_64X64,
};

/// The three characterized libraries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Library {
    /// cuBLAS, as used by Caffe.
    CuBlas,
    /// cuDNN.
    CuDnn,
    /// Nervana (neon) — the fastest of the three, batch multiple of 32.
    Nervana,
}

impl Library {
    /// All three, in Table III column order.
    pub fn all() -> [Library; 3] {
        [Library::CuBlas, Library::CuDnn, Library::Nervana]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Library::CuBlas => "cuBLAS",
            Library::CuDnn => "cuDNN",
            Library::Nervana => "Nervana",
        }
    }

    /// The smallest batch this library can run (paper §III.C: "the batch
    /// size of Nervana must be a multiple of 32").
    pub fn min_batch(&self) -> usize {
        match self {
            Library::Nervana => 32,
            _ => 1,
        }
    }

    /// Rounds a desired batch up to the library's constraint.
    pub fn legal_batch(&self, batch: usize) -> usize {
        let min = self.min_batch();
        batch.max(1).div_ceil(min) * min
    }

    /// The SGEMM tile this library launches for a GEMM of `shape` on
    /// `arch` (Table IV). Matrix-vector shapes (classifier layers at batch
    /// 1) take the GEMV-style kernel, as all three libraries do.
    pub fn variant_for(&self, arch: &GpuArch, shape: SgemmShape) -> SgemmVariant {
        if shape.n < 32 {
            return crate::sgemm::TILE_64X8;
        }
        let kepler = arch.cores_per_sm >= 192;
        match self {
            Library::CuBlas => {
                if kepler {
                    TILE_64X64
                } else {
                    TILE_64X128
                }
            }
            Library::CuDnn => {
                if arch.platform == Platform::Mobile {
                    TILE_32X32
                } else {
                    TILE_64X64
                }
            }
            Library::Nervana => {
                // Nervana's Maxwell assembler kernels: 128-wide tiles,
                // tile_m chosen by the result matrix's row count.
                if shape.m >= 128 {
                    TILE_128X128
                } else if shape.m >= 64 {
                    TILE_64X128
                } else {
                    TILE_32X128
                }
            }
        }
    }

    /// Full kernel configuration (libraries run their natural register
    /// allocation; only P-CNN's offline compiler tunes registers).
    pub fn config_for(&self, arch: &GpuArch, shape: SgemmShape) -> SgemmConfig {
        SgemmConfig::natural(self.variant_for(arch, shape))
    }

    /// Builds the simulator kernel for one group of a conv layer.
    pub fn conv_kernel(&self, arch: &GpuArch, conv: &ConvSpec, batch: usize) -> KernelDesc {
        let shape = SgemmShape::of_conv(conv, batch);
        let config = self.config_for(arch, shape);
        build_conv_kernel(arch, conv, batch, &config)
    }

    /// The library's convolution-workspace strategy on a platform
    /// (calibrated against Table III; see `DESIGN.md`).
    pub fn workspace_policy(&self, platform: Platform) -> WorkspacePolicy {
        match (self, platform) {
            // Caffe's cuBLAS path lowers one image at a time.
            (Library::CuBlas, _) => WorkspacePolicy::SingleImageMax,
            // Caffe's cuDNN integration caps per-layer workspace at 8 MB on
            // discrete GPUs; on the unified-memory mobile part the
            // fastest-algorithm preference allocates whole-batch lowering
            // buffers across layers.
            (Library::CuDnn, Platform::Mobile) => WorkspacePolicy::FullBatchSum { factor: 1.0 },
            (Library::CuDnn, _) => WorkspacePolicy::PerLayerCapped {
                cap_bytes: 8 * 1024 * 1024,
            },
            // Nervana pads and double-buffers aggressively on mobile.
            (Library::Nervana, Platform::Mobile) => WorkspacePolicy::FullBatchSum { factor: 0.75 },
            (Library::Nervana, _) => WorkspacePolicy::SingleImageMax,
        }
    }

    /// Activation storage precision (Nervana stores fp16 activations on
    /// desktop-class Maxwell GPUs).
    pub fn activation_precision(&self, platform: Platform) -> ActivationPrecision {
        match (self, platform) {
            (Library::Nervana, Platform::Desktop | Platform::Notebook) => ActivationPrecision::Fp16,
            _ => ActivationPrecision::Fp32,
        }
    }

    /// Memory footprint of running `spec` at `batch` with this library on
    /// `arch`.
    pub fn memory_estimate(
        &self,
        arch: &GpuArch,
        spec: &NetworkSpec,
        batch: usize,
    ) -> MemoryEstimate {
        estimate(
            spec,
            batch,
            self.workspace_policy(arch.platform),
            self.activation_precision(arch.platform),
        )
    }

    /// Whether `spec` at `batch` fits in `arch`'s usable memory — `false`
    /// reproduces an `x` cell of Table III.
    pub fn fits(&self, arch: &GpuArch, spec: &NetworkSpec, batch: usize) -> bool {
        batch.is_multiple_of(self.min_batch())
            && self
                .memory_estimate(arch, spec, batch)
                .fits(arch.usable_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnn_gpu::arch::{GTX_970M, JETSON_TX1, K20C, TITAN_X};
    use pcnn_gpu::occupancy::Occupancy;
    use pcnn_nn::spec::{alexnet, googlenet, vggnet};

    fn conv2_shape() -> SgemmShape {
        SgemmShape {
            m: 128,
            n: 729,
            k: 1200,
        }
    }

    #[test]
    fn table4_tx1_cublas_kernel() {
        let v = Library::CuBlas.variant_for(&JETSON_TX1, conv2_shape());
        assert_eq!((v.tile_m, v.tile_n), (64, 128));
        assert_eq!(v.natural_regs, 120);
        assert_eq!(v.shmem_bytes, 12544);
        assert_eq!(v.block_size, 128);
    }

    #[test]
    fn table4_tx1_cudnn_kernel() {
        let v = Library::CuDnn.variant_for(&JETSON_TX1, conv2_shape());
        assert_eq!((v.tile_m, v.tile_n), (32, 32));
        assert_eq!(v.natural_regs, 48);
        assert_eq!(v.block_size, 64);
    }

    #[test]
    fn table4_k20_kernels_identical_for_both_libs() {
        let a = Library::CuBlas.variant_for(&K20C, conv2_shape());
        let b = Library::CuDnn.variant_for(&K20C, conv2_shape());
        assert_eq!(a, b);
        assert_eq!((a.tile_m, a.tile_n), (64, 64));
        assert_eq!(a.natural_regs, 79);
        assert_eq!(a.shmem_bytes, 8468);
    }

    #[test]
    fn table4_maxblocks() {
        // TX1 cuBLAS: min(14, 8) = 8; K20: min(65, 39) = 39.
        let v = Library::CuBlas.variant_for(&JETSON_TX1, conv2_shape());
        let occ = Occupancy::of(&JETSON_TX1, &SgemmConfig::natural(v).resources());
        assert_eq!(occ.max_blocks(&JETSON_TX1), 8);
        let v = Library::CuBlas.variant_for(&K20C, conv2_shape());
        let occ = Occupancy::of(&K20C, &SgemmConfig::natural(v).resources());
        assert_eq!(occ.max_blocks(&K20C), 39);
    }

    #[test]
    fn nervana_batch_constraint() {
        assert_eq!(Library::Nervana.legal_batch(1), 32);
        assert_eq!(Library::Nervana.legal_batch(33), 64);
        assert_eq!(Library::CuBlas.legal_batch(1), 1);
    }

    /// Table III's out-of-memory pattern: the batching column.
    #[test]
    fn table3_oom_cells_tx1() {
        let (alex, goog, vgg) = (alexnet(), googlenet(), vggnet());
        // AlexNet batch 128 runs under every library on TX1.
        for lib in Library::all() {
            assert!(lib.fits(&JETSON_TX1, &alex, 128), "{} AlexNet", lib.name());
        }
        // GoogLeNet batch 64: cuBLAS runs, cuDNN and Nervana OOM.
        assert!(Library::CuBlas.fits(&JETSON_TX1, &goog, 64));
        assert!(!Library::CuDnn.fits(&JETSON_TX1, &goog, 64));
        assert!(!Library::Nervana.fits(&JETSON_TX1, &goog, 64));
        // VGG batch 32: cuBLAS runs, cuDNN and Nervana OOM.
        assert!(Library::CuBlas.fits(&JETSON_TX1, &vgg, 32));
        assert!(!Library::CuDnn.fits(&JETSON_TX1, &vgg, 32));
        assert!(!Library::Nervana.fits(&JETSON_TX1, &vgg, 32));
    }

    #[test]
    fn table3_no_oom_on_desktop_and_notebook() {
        for arch in [&TITAN_X, &GTX_970M] {
            for (spec, batch) in [(alexnet(), 128), (googlenet(), 64), (vggnet(), 32)] {
                for lib in Library::all() {
                    assert!(
                        lib.fits(arch, &spec, batch),
                        "{} {} batch {batch} on {}",
                        lib.name(),
                        spec.name,
                        arch.name
                    );
                }
            }
        }
    }

    #[test]
    fn non_batching_vgg_nervana_still_ooms_on_tx1() {
        // Table III non-batching: Nervana's minimum is 32, which already
        // OOMs for VGG on TX1.
        let vgg = vggnet();
        let b = Library::Nervana.legal_batch(1);
        assert!(!Library::Nervana.fits(&JETSON_TX1, &vgg, b));
        // But GoogLeNet at batch 32 fits (paper: 527 ms).
        assert!(Library::Nervana.fits(&JETSON_TX1, &googlenet(), 32));
    }

    #[test]
    fn conv_kernel_has_positive_work() {
        let alex = alexnet();
        let conv2 = alex.conv_layers()[1].clone();
        let k = Library::CuBlas.conv_kernel(&JETSON_TX1, &conv2, 1);
        assert_eq!(k.grid, 12); // Table IV
        assert!(k.flops > 0);
        assert!(k.trace.body_iters > 0);
    }
}
