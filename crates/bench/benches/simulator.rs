//! Criterion benchmarks of the GPU simulator, plus the two ablations the
//! design calls out: RR vs Priority-SM dispatch and spill-to-shared vs
//! spill-to-global kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pcnn_gpu::arch::{JETSON_TX1, K20C};
use pcnn_gpu::sim::dispatch::simulate_kernel;
use pcnn_gpu::sim::SimCache;
use pcnn_gpu::DispatchPolicy;
use pcnn_kernels::sgemm::{build_kernel, SgemmConfig, SgemmShape, TILE_128X128, TILE_64X64};
use pcnn_kernels::SpillPlan;

fn conv2_shape() -> SgemmShape {
    SgemmShape {
        m: 128,
        n: 729,
        k: 1200,
    }
}

fn bench_kernel_sim(c: &mut Criterion) {
    let kernel = build_kernel(conv2_shape(), &SgemmConfig::natural(TILE_64X64), "conv2");
    c.bench_function("simulate conv2 kernel on K20 (RR)", |b| {
        b.iter(|| {
            let mut cache = SimCache::new();
            black_box(simulate_kernel(
                &K20C,
                black_box(&kernel),
                DispatchPolicy::RoundRobin,
                &mut cache,
            ))
        })
    });
    c.bench_function("simulate conv2 kernel on TX1 (RR)", |b| {
        b.iter(|| {
            let mut cache = SimCache::new();
            black_box(simulate_kernel(
                &JETSON_TX1,
                black_box(&kernel),
                DispatchPolicy::RoundRobin,
                &mut cache,
            ))
        })
    });
}

/// Ablation: RR vs PSM on a small grid (Fig. 7's scenario). The benchmark
/// also prints the simulated outcome once so the numbers land in the
/// bench log.
fn bench_dispatch_ablation(c: &mut Criterion) {
    let kernel = build_kernel(
        SgemmShape {
            m: 128,
            n: 169,
            k: 1728,
        },
        &SgemmConfig::natural(TILE_64X64),
        "conv5",
    );
    let mut cache = SimCache::new();
    let rr = simulate_kernel(&K20C, &kernel, DispatchPolicy::RoundRobin, &mut cache);
    let psm = simulate_kernel(
        &K20C,
        &kernel,
        DispatchPolicy::PrioritySm {
            sms: 3,
            tlp: 2,
            power_gate: true,
        },
        &mut cache,
    );
    println!(
        "[ablation dispatch] RR: {:.3} ms / {:.3} J on {} SMs; PSM(3 SMs): {:.3} ms / {:.3} J",
        rr.seconds * 1e3,
        rr.energy.total_j(),
        rr.sms_used,
        psm.seconds * 1e3,
        psm.energy.total_j()
    );
    c.bench_function("dispatch RR conv5", |b| {
        b.iter(|| {
            let mut cache = SimCache::new();
            black_box(simulate_kernel(
                &K20C,
                &kernel,
                DispatchPolicy::RoundRobin,
                &mut cache,
            ))
        })
    });
    c.bench_function("dispatch PSM conv5", |b| {
        b.iter(|| {
            let mut cache = SimCache::new();
            black_box(simulate_kernel(
                &K20C,
                &kernel,
                DispatchPolicy::PrioritySm {
                    sms: 3,
                    tlp: 2,
                    power_gate: true,
                },
                &mut cache,
            ))
        })
    });
}

/// Ablation: spill destination. Shared-memory spilling must cost far less
/// simulated time than global spilling at the same register count.
fn bench_spill_ablation(c: &mut Criterion) {
    let shape = conv2_shape();
    let shared_cfg = SgemmConfig {
        variant: TILE_128X128,
        regs_per_thread: 121,
        spill: SpillPlan {
            to_shared: 6,
            to_global: 0,
        },
    };
    let global_cfg = SgemmConfig {
        variant: TILE_128X128,
        regs_per_thread: 121,
        spill: SpillPlan {
            to_shared: 0,
            to_global: 6,
        },
    };
    let ks = build_kernel(shape, &shared_cfg, "spill-shared");
    let kg = build_kernel(shape, &global_cfg, "spill-global");
    let mut cache = SimCache::new();
    let rs = simulate_kernel(&K20C, &ks, DispatchPolicy::RoundRobin, &mut cache);
    let mut cache = SimCache::new();
    let rg = simulate_kernel(&K20C, &kg, DispatchPolicy::RoundRobin, &mut cache);
    println!(
        "[ablation spill] shared: {:.3} ms; global: {:.3} ms ({}x slower)",
        rs.seconds * 1e3,
        rg.seconds * 1e3,
        rg.seconds / rs.seconds
    );
    c.bench_function("sim spill-to-shared", |b| {
        b.iter(|| {
            let mut cache = SimCache::new();
            black_box(simulate_kernel(
                &K20C,
                &ks,
                DispatchPolicy::RoundRobin,
                &mut cache,
            ))
        })
    });
    c.bench_function("sim spill-to-global", |b| {
        b.iter(|| {
            let mut cache = SimCache::new();
            black_box(simulate_kernel(
                &K20C,
                &kg,
                DispatchPolicy::RoundRobin,
                &mut cache,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_kernel_sim,
    bench_dispatch_ablation,
    bench_spill_ablation
);
criterion_main!(benches);
