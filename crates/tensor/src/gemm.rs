//! Blocked row-major single-precision matrix multiplication.
//!
//! The GPU kernels in the paper are SGEMMs (§III.C, Table IV); this module
//! is the CPU implementation that actually performs the arithmetic in the
//! reproduction, while `pcnn-kernels`/`pcnn-gpu` model how the same SGEMM
//! would behave on each GPU microarchitecture.

/// Cache-blocking tile sizes. 64x64x64 f32 tiles fit comfortably in L1/L2 on
/// any host this runs on; the exact value only affects speed, not results.
const MC: usize = 64;
const NC: usize = 64;
const KC: usize = 64;

/// `C += A * B` for row-major matrices.
///
/// `A` is `m x k`, `B` is `k x n`, `C` is `m x n`. Accumulates into `C`
/// (callers wanting `C = A * B` should zero `C` first — [`crate::Tensor::zeros`]
/// does).
///
/// # Panics
///
/// Panics if any slice is shorter than its `m/n/k`-implied length.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);

    for i0 in (0..m).step_by(MC) {
        let i_max = (i0 + MC).min(m);
        for p0 in (0..k).step_by(KC) {
            let p_max = (p0 + KC).min(k);
            for j0 in (0..n).step_by(NC) {
                let j_max = (j0 + NC).min(n);
                for i in i0..i_max {
                    let a_row = &a[i * k..i * k + k];
                    let c_row = &mut c[i * n..i * n + n];
                    for p in p0..p_max {
                        let aval = a_row[p];
                        if aval == 0.0 {
                            continue;
                        }
                        let b_row = &b[p * n..p * n + n];
                        for j in j0..j_max {
                            c_row[j] += aval * b_row[j];
                        }
                    }
                }
            }
        }
    }
}

/// `C = A * B + bias` where `bias` is broadcast along rows: `C[i][j] += bias[i]`.
///
/// This matches the fused filter-matrix x data-matrix convolution of the
/// paper's Fig. 2, where each output channel (row of `C`) has one bias.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m/n/k` or
/// `bias.len() < m`.
pub fn gemm_bias(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], bias: &[f32], c: &mut [f32]) {
    assert!(bias.len() >= m, "bias too short: {} < {m}", bias.len());
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    for i in 0..m {
        let row = &mut c[i * n..i * n + n];
        for v in row.iter_mut() {
            *v = bias[i];
        }
    }
    gemm(m, n, k, a, b, c);
}

/// `C += A * B^T` for row-major matrices: `A` is `m x k`, `B` is `n x k`,
/// `C` is `m x n`.
///
/// Used by the convolution/linear backward passes (`dW = dOut * cols^T`).
///
/// # Panics
///
/// Panics if any slice is shorter than its implied length.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A too short");
    assert!(b.len() >= n * k, "B too short");
    assert!(c.len() >= m * n, "C too short");
    for i in 0..m {
        let a_row = &a[i * k..i * k + k];
        let c_row = &mut c[i * n..i * n + n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..j * k + k];
            let mut acc = 0.0;
            for p in 0..k {
                acc += a_row[p] * b_row[p];
            }
            *cv += acc;
        }
    }
}

/// `C += A^T * B` for row-major matrices: `A` is `k x m`, `B` is `k x n`,
/// `C` is `m x n`.
///
/// Used by the convolution/linear backward passes (`dCols = W^T * dOut`).
///
/// # Panics
///
/// Panics if any slice is shorter than its implied length.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= k * m, "A too short");
    assert!(b.len() >= k * n, "B too short");
    assert!(c.len() >= m * n, "C too short");
    for p in 0..k {
        let a_row = &a[p * m..p * m + m];
        let b_row = &b[p * n..p * n + n];
        for i in 0..m {
            let aval = a_row[i];
            if aval == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..i * n + n];
            for j in 0..n {
                c_row[j] += aval * b_row[j];
            }
        }
    }
}

/// Reference triple-loop GEMM used to validate [`gemm`] in tests and
/// property checks. `C += A * B`.
///
/// # Panics
///
/// Panics if any slice is shorter than its implied length.
pub fn gemm_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i % 13) as f32 - 6.0).collect()
    }

    #[test]
    fn gemm_matches_naive_small() {
        let (m, n, k) = (3, 4, 5);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(m, n, k, &a, &b, &mut c1);
        gemm_naive(m, n, k, &a, &b, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn gemm_matches_naive_blocked_boundary() {
        // Sizes that straddle the 64-blocking boundaries.
        let (m, n, k) = (65, 67, 129);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(m, n, k, &a, &b, &mut c1);
        gemm_naive(m, n, k, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_accumulates() {
        let mut c = vec![1.0; 4];
        gemm(2, 2, 1, &[1.0, 2.0], &[3.0, 4.0], &mut c);
        assert_eq!(c, vec![4.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn gemm_bias_broadcasts_per_row() {
        let a = [1.0, 0.0, 0.0, 1.0]; // identity
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        gemm_bias(2, 2, 2, &a, &b, &[10.0, 20.0], &mut c);
        assert_eq!(c, vec![15.0, 16.0, 27.0, 28.0]);
    }

    #[test]
    fn degenerate_dims_are_noops() {
        let mut c = vec![0.0f32; 0];
        gemm(0, 0, 0, &[], &[], &mut c);
        let mut c = vec![3.0; 2];
        gemm(1, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "A too short")]
    fn gemm_panics_on_short_a() {
        let mut c = vec![0.0; 4];
        gemm(2, 2, 2, &[1.0; 3], &[1.0; 4], &mut c);
    }

    fn transpose(rows: usize, cols: usize, x: &[f32]) -> Vec<f32> {
        let mut t = vec![0.0; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                t[j * rows + i] = x[i * cols + j];
            }
        }
        t
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let (m, n, k) = (4, 5, 6);
        let a = seq(m * k);
        let b = seq(n * k); // B is n x k
        let bt = transpose(n, k, &b); // k x n
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_nt(m, n, k, &a, &b, &mut c1);
        gemm_naive(m, n, k, &a, &bt, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let (m, n, k) = (4, 5, 6);
        let a = seq(k * m); // A is k x m
        let b = seq(k * n);
        let at = transpose(k, m, &a); // m x k
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_tn(m, n, k, &a, &b, &mut c1);
        gemm_naive(m, n, k, &at, &b, &mut c2);
        assert_eq!(c1, c2);
    }
}
