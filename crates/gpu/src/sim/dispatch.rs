//! Event-driven CTA dispatch across SMs.
//!
//! Implements the hardware Round-Robin CTA scheduler and the paper's
//! Priority-SM scheduler (§III.C Fig. 7): PSM packs `optTLP` CTAs onto the
//! first SM, then the second, using only `optSM` SMs so the rest can be
//! power-gated (§IV.C.2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::arch::GpuArch;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::metrics::{compute_efficiency, utilization};
use crate::occupancy::Occupancy;
use crate::sim::trace::InstrCounts;
use crate::sim::{KernelDesc, SimCache};

/// CTA dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Hardware behaviour: CTAs spread round-robin over all SMs, each SM
    /// filled up to the occupancy limit; all SMs stay powered.
    RoundRobin,
    /// Priority-SM: pack `tlp` CTAs per SM onto at most `sms` SMs; unused
    /// SMs are power-gated when `power_gate` is set.
    PrioritySm {
        /// SMs to use (`optSM`); clamped to the architecture's SM count.
        sms: usize,
        /// CTAs per SM (`optTLP`); clamped to the occupancy limit.
        tlp: usize,
        /// Power-gate the unused SMs.
        power_gate: bool,
    },
}

/// Result of simulating one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// End-to-end cycles.
    pub cycles: u64,
    /// End-to-end seconds.
    pub seconds: f64,
    /// SMs that executed at least one CTA.
    pub sms_used: usize,
    /// Resident-CTA cap per SM that was in force.
    pub tlp: usize,
    /// Chip-wide `maxBlocks` for this kernel (occupancy x all SMs).
    pub max_blocks: usize,
    /// Warp-instruction counts of the whole launch.
    pub instr: InstrCounts,
    /// Energy decomposition over the launch window.
    pub energy: EnergyBreakdown,
    /// Useful FLOPs of the launch.
    pub flops: u64,
}

impl KernelResult {
    /// Paper eq. 3 `cpE` for this launch.
    pub fn cpe(&self, arch: &GpuArch) -> f64 {
        compute_efficiency(arch, self.flops, self.seconds)
    }

    /// Paper eq. 6 `Util` for this launch (grid vs the chip-wide
    /// occupancy-limited `maxBlocks`).
    pub fn util(&self, grid: usize) -> f64 {
        utilization(grid, self.max_blocks)
    }

    /// Achieved throughput in FLOP/s.
    pub fn throughput(&self) -> f64 {
        self.flops as f64 / self.seconds
    }
}

/// Simulates one kernel launch under `policy`.
///
/// # Panics
///
/// Panics if the kernel has an empty grid or zero-sized blocks.
pub fn simulate_kernel(
    arch: &GpuArch,
    kernel: &KernelDesc,
    policy: DispatchPolicy,
    cache: &mut SimCache,
) -> KernelResult {
    assert!(kernel.grid > 0, "empty grid");
    let occ = Occupancy::of(arch, &kernel.resources);
    let occ_tlp = occ.ctas_per_sm().max(1);
    let telem = pcnn_telemetry::enabled();
    let (sms, tlp, gated) = match policy {
        DispatchPolicy::RoundRobin => (arch.n_sms, occ_tlp, 0),
        DispatchPolicy::PrioritySm {
            sms,
            tlp,
            power_gate,
        } => {
            let sms = sms.clamp(1, arch.n_sms);
            let tlp = tlp.clamp(1, occ_tlp);
            let gated = if power_gate { arch.n_sms - sms } else { 0 };
            (sms, tlp, gated)
        }
    };

    let _span = pcnn_telemetry::span!(
        "sim.kernel",
        name = kernel.name.as_str(),
        grid = kernel.grid,
        sms = sms,
        tlp = tlp,
        gated = gated
    );

    // Per-SM resident counts and a finish-event heap.
    let mut resident = vec![0usize; sms];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut remaining = kernel.grid;
    let mut sms_touched = vec![false; sms];
    // Last CTA completion per SM, for the simulated-time busy timeline.
    let mut sm_end = vec![0u64; sms];

    // Initial fill. RR deals one CTA per SM in turn; PSM fills an SM to
    // `tlp` before moving on (paper Fig. 7).
    match policy {
        DispatchPolicy::RoundRobin => 'fill: loop {
            let mut assigned = false;
            for r in resident.iter_mut() {
                if remaining == 0 {
                    break 'fill;
                }
                if *r < tlp {
                    *r += 1;
                    remaining -= 1;
                    assigned = true;
                }
            }
            if !assigned {
                break;
            }
        },
        DispatchPolicy::PrioritySm { .. } => {
            for r in resident.iter_mut() {
                while *r < tlp && remaining > 0 {
                    *r += 1;
                    remaining -= 1;
                }
            }
        }
    }
    // Launch the initial residents: every CTA on an SM gets the duration of
    // a wave at that SM's resident count.
    for sm in 0..sms {
        if resident[sm] > 0 {
            sms_touched[sm] = true;
            let d = cache.wave_cycles(arch, kernel, resident[sm], sms);
            for _ in 0..resident[sm] {
                heap.push(Reverse((d, sm)));
            }
        }
    }

    let mut end = 0u64;
    while let Some(Reverse((t, sm))) = heap.pop() {
        end = end.max(t);
        sm_end[sm] = sm_end[sm].max(t);
        resident[sm] -= 1;
        if remaining > 0 {
            remaining -= 1;
            resident[sm] += 1;
            let d = cache.wave_cycles(arch, kernel, resident[sm], sms);
            heap.push(Reverse((t + d, sm)));
        }
    }

    let seconds = end as f64 / arch.freq_hz();
    let per_warp = kernel.trace.warp_instr_counts();
    let instr = per_warp.scaled((kernel.warps_per_cta() * kernel.grid) as u64);
    let sms_used = sms_touched.iter().filter(|&&b| b).count();
    let powered = arch.n_sms - gated;
    let energy = EnergyModel.compute(arch, &instr, seconds, powered, gated);
    if telem {
        let mut m = pcnn_telemetry::Metrics::default();
        m.add("sim.kernel.launches", 1);
        m.add("sim.kernel.ctas", kernel.grid as u64);
        m.add("sim.kernel.gated_sms", gated as u64);
        m.observe("sim.kernel.sms_used", sms_used as f64);
        m.observe("sim.kernel.seconds", seconds);
        pcnn_telemetry::merge_metrics(&m);
        // One busy slice per touched SM on the shared simulated-time axis:
        // this launch reserves [base, base + end) and each SM shows busy
        // from the launch start to its last CTA completion.
        let to_us = 1e6 / arch.freq_hz();
        let base = pcnn_telemetry::sim_window(end as f64 * to_us);
        for (sm, &e) in sm_end.iter().enumerate() {
            if sms_touched[sm] {
                pcnn_telemetry::sim_slice(&kernel.name, sm as u64, base, e as f64 * to_us);
            }
        }
    }
    KernelResult {
        cycles: end,
        seconds,
        sms_used,
        tlp,
        max_blocks: occ.max_blocks(arch),
        instr,
        energy,
        flops: kernel.flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::K20C;
    use crate::occupancy::KernelResources;
    use crate::sim::trace::{CtaTrace, Op};

    fn kernel(grid: usize) -> KernelDesc {
        KernelDesc {
            name: "t".into(),
            grid,
            resources: KernelResources {
                block_size: 128,
                regs_per_thread: 64,
                shmem_per_block: 8192,
            },
            trace: CtaTrace {
                prologue: vec![(Op::Ialu, 8), (Op::Ldg, 4), (Op::WaitMem, 1)],
                body: vec![(Op::Ldg, 4), (Op::Lds, 8), (Op::Ffma, 64), (Op::Bar, 1)],
                body_iters: 32,
                epilogue: vec![(Op::Stg, 8)],
            },
            // Useful FLOPs consistent with the trace: 32 iters x 64 FFMA x
            // 4 warps x 32 lanes x 2 FLOPs per CTA.
            flops: 2 * 32 * 64 * 4 * 32 * grid as u64,
        }
    }

    #[test]
    fn all_ctas_complete() {
        let k = kernel(50);
        let mut cache = SimCache::new();
        let r = simulate_kernel(&K20C, &k, DispatchPolicy::RoundRobin, &mut cache);
        assert!(r.cycles > 0);
        assert!(r.seconds > 0.0);
        // Instruction counts cover the full grid.
        let per_warp = k.trace.warp_instr_counts();
        assert_eq!(r.instr.ffma, per_warp.ffma * 4 * 50);
    }

    #[test]
    fn psm_uses_fewer_sms_for_small_grids() {
        // 4 CTAs, PSM tlp 2 -> 2 SMs; RR spreads to 4 SMs.
        let k = kernel(4);
        let mut c1 = SimCache::new();
        let rr = simulate_kernel(&K20C, &k, DispatchPolicy::RoundRobin, &mut c1);
        let mut c2 = SimCache::new();
        let psm = simulate_kernel(
            &K20C,
            &k,
            DispatchPolicy::PrioritySm {
                sms: 2,
                tlp: 2,
                power_gate: true,
            },
            &mut c2,
        );
        assert_eq!(rr.sms_used, 4);
        assert_eq!(psm.sms_used, 2);
        // Fig. 7's point: nearly the same performance with half the SMs.
        assert!(psm.seconds < rr.seconds * 2.5);
        // And lower leakage energy thanks to gating.
        assert!(psm.energy.leakage_j < rr.energy.leakage_j);
    }

    #[test]
    fn bigger_grid_takes_longer() {
        let mut c1 = SimCache::new();
        let mut c2 = SimCache::new();
        let small = simulate_kernel(&K20C, &kernel(10), DispatchPolicy::RoundRobin, &mut c1);
        let big = simulate_kernel(&K20C, &kernel(200), DispatchPolicy::RoundRobin, &mut c2);
        assert!(big.cycles > small.cycles);
    }

    #[test]
    fn rr_on_full_grid_uses_all_sms() {
        let mut cache = SimCache::new();
        let r = simulate_kernel(&K20C, &kernel(100), DispatchPolicy::RoundRobin, &mut cache);
        assert_eq!(r.sms_used, K20C.n_sms);
    }

    #[test]
    fn util_matches_eq6() {
        let k = kernel(20);
        let mut cache = SimCache::new();
        let r = simulate_kernel(&K20C, &k, DispatchPolicy::RoundRobin, &mut cache);
        let util = r.util(k.grid);
        assert!(util > 0.0 && util <= 1.0);
    }

    #[test]
    fn cpe_below_one() {
        let mut cache = SimCache::new();
        let r = simulate_kernel(&K20C, &kernel(100), DispatchPolicy::RoundRobin, &mut cache);
        let cpe = r.cpe(&K20C);
        assert!(cpe > 0.0 && cpe < 1.0, "cpe {cpe}");
    }
}
