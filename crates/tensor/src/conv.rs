//! Alternative convolution algorithms: direct (fused-pack) and Winograd
//! F(2x2,3x3), selectable per layer by the offline autotuner.
//!
//! The baseline path lowers every convolution with [`crate::im2col`] and
//! multiplies with the packed [`crate::gemm`]. That is the right call for
//! large-spatial layers, but the lowering materialises a
//! `patch_len x out_positions` matrix that the GEMM immediately re-reads
//! and re-packs — pure overhead for small-spatial/large-channel layers
//! (cuConv's observation). This module adds the two shape-dependent
//! alternatives the per-layer tuner chooses between:
//!
//! - [`conv2d_direct`]: streams input patches straight into the packed
//!   GEMM's `B` micropanel image — the padding-aware gather of `im2col`
//!   fused with `pack_b`, skipping the materialised column matrix
//!   entirely. The packed bytes are identical to
//!   `pack_b(im2col(input))`, and the compute tail is the *same*
//!   partition + loop nest as [`crate::gemm`], so outputs are **bitwise
//!   equal** to the im2col path at every thread count.
//! - [`conv2d_winograd`]: the F(2x2,3x3) minimal-filtering transform for
//!   stride-1 3x3 layers, cutting microkernel multiplies per output from
//!   9 to 16/4 = 4 (2.25x). Transform matrices use only `{0, ±1, ±0.5}`
//!   coefficients, all exact in f32. The accumulation *order* differs
//!   from im2col, so outputs are not bitwise-equal to the reference —
//!   they carry a small rounding difference bounded by
//!   [`winograd_error_bound`] — but they are bitwise **deterministic**:
//!   the transforms are serial pure element maps and the 16 per-coordinate
//!   multiplies go through the deterministic [`crate::gemm`], so every
//!   thread count produces the identical bits.
//!
//! # Profiling
//!
//! Direct's fused pack reports as [`Phase::PackB`] (it *is* the B pack);
//! Winograd's filter/input transforms report as
//! [`Phase::WinogradTransform`] and its inverse transform + bias as
//! [`Phase::WinogradInverse`], so `pcnn profile` attributes the new
//! phases per layer.

use crate::gemm::{active_partition, gemm, gemm_packed, packed_b_len, KC, NR};
use crate::im2col::Conv2dGeometry;
use pcnn_profile::{phase_span, Phase};

/// A convolution algorithm the tuner can select for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvAlgo {
    /// Materialised im2col lowering + packed GEMM (the baseline).
    Im2col,
    /// Fused patch-gather into the packed GEMM (no column matrix).
    Direct,
    /// Winograd F(2x2,3x3) minimal filtering (stride-1 3x3 only).
    Winograd,
}

impl ConvAlgo {
    /// Every algorithm, in tuner candidate order.
    pub const ALL: [ConvAlgo; 3] = [ConvAlgo::Im2col, ConvAlgo::Direct, ConvAlgo::Winograd];

    /// Stable lowercase name used in plans, reports and benchmarks.
    pub fn name(self) -> &'static str {
        match self {
            ConvAlgo::Im2col => "im2col",
            ConvAlgo::Direct => "direct",
            ConvAlgo::Winograd => "winograd",
        }
    }

    /// Parses a [`name`](Self::name) back into the algorithm.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|a| a.name() == s)
    }

    /// Whether this algorithm can execute the given layer shape exactly.
    /// Im2col and direct handle every geometry; Winograd F(2x2,3x3) is
    /// specialised to stride-1 3x3 filters.
    pub fn supports(self, geom: &Conv2dGeometry) -> bool {
        match self {
            ConvAlgo::Im2col | ConvAlgo::Direct => true,
            ConvAlgo::Winograd => geom.kernel == 3 && geom.stride == 1,
        }
    }
}

impl std::fmt::Display for ConvAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Direct convolution of one CHW image: `out = weight * patches + bias`.
///
/// `weight` is the `[out_channels, patch_len]` filter matrix, `out` the
/// `out_channels * out_positions` output map (fully overwritten). The
/// input patches are gathered straight into the packed GEMM's `B`
/// micropanel image — element order per patch row matches
/// [`crate::im2col`] exactly and the ragged panel edges are zero-filled
/// exactly as `pack_b` does — so the result is bitwise identical to the
/// im2col reference while skipping the materialised column matrix (one
/// full write + read of `patch_len x out_positions` floats).
///
/// # Panics
///
/// Panics if any slice is shorter than the geometry implies.
pub fn conv2d_direct(
    geom: &Conv2dGeometry,
    out_channels: usize,
    weight: &[f32],
    bias: &[f32],
    input: &[f32],
    out: &mut [f32],
) {
    let (m, n, k) = (out_channels, geom.out_positions(), geom.patch_len());
    let chw = geom.in_channels * geom.in_h * geom.in_w;
    assert!(input.len() >= chw, "input too short");
    assert!(weight.len() >= m * k, "weight too short");
    assert!(bias.len() >= m, "bias too short");
    assert!(out.len() >= m * n, "out too short");
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let part = active_partition(m, n, k);
    let span = phase_span(Phase::PackB);
    let mut b_pack = pcnn_parallel::scratch_f32(packed_b_len(n, k));
    pcnn_parallel::with_region_label("conv.direct.pack", || {
        pack_patches(geom, input, &mut b_pack, part.tasks() > 1);
    });
    if let Some(s) = span {
        // One image read, the packed image written (no column matrix).
        s.finish(0, 4 * (chw + packed_b_len(n, k)) as u64);
    }

    let span = phase_span(Phase::Epilogue);
    for (i, row) in out[..m * n].chunks_mut(n).enumerate() {
        row.fill(bias[i]);
    }
    if let Some(s) = span {
        s.finish(0, 4 * (m * n) as u64);
    }
    gemm_packed(m, n, k, weight, &b_pack, part, out);
}

/// Gathers input patches directly into `pack_b`'s micropanel layout:
/// `B[r][pos]` is the im2col element — patch row `r` decomposes as
/// `c = r / k^2, ky = r / k % k, kx = r % k` and column `pos` as
/// `(oy, ox)` — but each value lands at its packed address
/// (block `r / KC`, panel `pos / NR`, offset `(r % KC) * NR + pos % NR`)
/// without ever existing in row-major form. Byte-for-byte the same image
/// `pack_b(n, k, im2col(geom, input))` produces, including the zero-fill
/// of ragged panel edges.
fn pack_patches(geom: &Conv2dGeometry, input: &[f32], packed: &mut [f32], parallel: bool) {
    let (n, k) = (geom.out_positions(), geom.patch_len());
    let kern = geom.kernel;
    let n_panels = n.div_ceil(NR);
    let fill = |pc: usize, offset: usize, part: &mut [f32]| {
        let p0 = pc * KC;
        let kc = KC.min(k - p0);
        // Mirrors `pack_b`: only full blocks split, at micropanel
        // boundaries, so `offset` is whole KC-deep micropanels.
        let jp0 = offset / (KC * NR);
        for (dj, panel) in part.chunks_mut(kc * NR).enumerate() {
            let j0 = (jp0 + dj) * NR;
            let nr = NR.min(n - j0);
            for p in 0..kc {
                let r = p0 + p;
                let c = r / (kern * kern);
                let ky = r / kern % kern;
                let kx = r % kern;
                let chan = &input[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
                let dst = &mut panel[p * NR..(p + 1) * NR];
                for (j, d) in dst.iter_mut().enumerate().take(nr) {
                    let pos = j0 + j;
                    let (oy, ox) = (pos / geom.out_w, pos % geom.out_w);
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                    *d = if iy >= 0
                        && (iy as usize) < geom.in_h
                        && ix >= 0
                        && (ix as usize) < geom.in_w
                    {
                        chan[iy as usize * geom.in_w + ix as usize]
                    } else {
                        0.0
                    };
                }
                dst[nr..].fill(0.0);
            }
        }
    };
    let len = k * n_panels * NR;
    if parallel {
        pcnn_parallel::par_chunks_mut_fine(&mut packed[..len], n_panels * KC * NR, KC * NR, fill);
    } else {
        for (pc, block) in packed[..len].chunks_mut(n_panels * KC * NR).enumerate() {
            fill(pc, 0, block);
        }
    }
}

/// Winograd F(2x2,3x3) convolution of one CHW image (stride-1 3x3 only):
/// `out = weight (*) input + bias`, fully overwriting `out`.
///
/// Each 2x2 output tile is produced from a 4x4 input tile via the
/// classic minimal-filtering factorisation `Y = A^T [ (G g G^T) .*
/// (B^T d B) ] A`, with the element-wise products batched over channels
/// into 16 `out_channels x in_channels x tiles` GEMMs (one per transform
/// coordinate) through the deterministic packed [`crate::gemm`]. All
/// transform coefficients are `{0, ±1, ±0.5}` — exact in f32 — and the
/// transforms are serial pure element maps, so the output is bitwise
/// deterministic at every thread count. Accumulation order differs from
/// im2col; the numerical difference is bounded by
/// [`winograd_error_bound`].
///
/// # Panics
///
/// Panics if `geom` is not a stride-1 3x3 layer or a slice is shorter
/// than the geometry implies.
pub fn conv2d_winograd(
    geom: &Conv2dGeometry,
    out_channels: usize,
    weight: &[f32],
    bias: &[f32],
    input: &[f32],
    out: &mut [f32],
) {
    assert!(
        ConvAlgo::Winograd.supports(geom),
        "winograd F(2x2,3x3) requires kernel 3, stride 1 (got kernel {}, stride {})",
        geom.kernel,
        geom.stride
    );
    let (oc, ic) = (out_channels, geom.in_channels);
    let n_pos = geom.out_positions();
    let chw = ic * geom.in_h * geom.in_w;
    assert!(input.len() >= chw, "input too short");
    assert!(weight.len() >= oc * geom.patch_len(), "weight too short");
    assert!(bias.len() >= oc, "bias too short");
    assert!(out.len() >= oc * n_pos, "out too short");
    if oc == 0 || ic == 0 || n_pos == 0 {
        return;
    }

    let tiles_y = geom.out_h.div_ceil(2);
    let tiles_x = geom.out_w.div_ceil(2);
    let t = tiles_y * tiles_x;

    // U[xi]: oc x ic filter transform, V[xi]: ic x t input transform,
    // M[xi] = U[xi] * V[xi]: oc x t — 16 coordinates each.
    let mut u = pcnn_parallel::scratch_f32(16 * oc * ic);
    let mut v = pcnn_parallel::scratch_f32(16 * ic * t);
    let mut mbuf = pcnn_parallel::scratch_f32(16 * oc * t);

    // Filter transform: U = G g G^T per (oc, ic) 3x3 filter, where
    // G = [[1,0,0],[1/2,1/2,1/2],[1/2,-1/2,1/2],[0,0,1]].
    let span = phase_span(Phase::WinogradTransform);
    for o in 0..oc {
        for c in 0..ic {
            let g = &weight[o * geom.patch_len() + c * 9..o * geom.patch_len() + c * 9 + 9];
            // Rows: G applied to the 3 filter rows -> 4 rows of 3.
            let mut gg = [[0.0f32; 3]; 4];
            for j in 0..3 {
                let (g0, g1, g2) = (g[j], g[3 + j], g[6 + j]);
                gg[0][j] = g0;
                gg[1][j] = 0.5 * (g0 + g1 + g2);
                gg[2][j] = 0.5 * (g0 - g1 + g2);
                gg[3][j] = g2;
            }
            // Columns: right-multiply by G^T -> 4x4.
            for (a, row) in gg.iter().enumerate() {
                let (t0, t1, t2) = (row[0], row[1], row[2]);
                let uu = [t0, 0.5 * (t0 + t1 + t2), 0.5 * (t0 - t1 + t2), t2];
                for (b, &val) in uu.iter().enumerate() {
                    u[(a * 4 + b) * oc * ic + o * ic + c] = val;
                }
            }
        }
    }
    // Input transform: V = B^T d B per (ic, tile) 4x4 input patch, where
    // B^T = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]]. Tile (ty, tx)
    // reads the patch at (ty*2 - pad, tx*2 - pad), zero outside.
    for c in 0..ic {
        let chan = &input[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for ti in 0..t {
            let (ty, tx) = (ti / tiles_x, ti % tiles_x);
            let iy0 = (ty * 2) as isize - geom.pad as isize;
            let ix0 = (tx * 2) as isize - geom.pad as isize;
            let mut d = [[0.0f32; 4]; 4];
            for (dy, drow) in d.iter_mut().enumerate() {
                let iy = iy0 + dy as isize;
                if iy < 0 || iy as usize >= geom.in_h {
                    continue;
                }
                for (dx, dval) in drow.iter_mut().enumerate() {
                    let ix = ix0 + dx as isize;
                    if ix >= 0 && (ix as usize) < geom.in_w {
                        *dval = chan[iy as usize * geom.in_w + ix as usize];
                    }
                }
            }
            // Rows: B^T d -> 4 rows of 4.
            let mut w = [[0.0f32; 4]; 4];
            for j in 0..4 {
                w[0][j] = d[0][j] - d[2][j];
                w[1][j] = d[1][j] + d[2][j];
                w[2][j] = d[2][j] - d[1][j];
                w[3][j] = d[1][j] - d[3][j];
            }
            // Columns: (B^T d) B -> 4x4.
            for (a, row) in w.iter().enumerate() {
                let z = [
                    row[0] - row[2],
                    row[1] + row[2],
                    row[2] - row[1],
                    row[1] - row[3],
                ];
                for (b, &val) in z.iter().enumerate() {
                    v[(a * 4 + b) * ic * t + c * t + ti] = val;
                }
            }
        }
    }
    if let Some(s) = span {
        // Filter + input reads, U + V writes; ~40 adds/muls per 4x4.
        s.finish(
            (40 * oc * ic + 40 * ic * t) as u64,
            4 * (oc * geom.patch_len() + chw + 16 * (oc * ic + ic * t)) as u64,
        );
    }

    // 16 per-coordinate GEMMs: M[xi] = U[xi] * V[xi]. Pooled scratch has
    // unspecified contents and `gemm` accumulates, so zero M first.
    mbuf[..16 * oc * t].fill(0.0);
    for xi in 0..16 {
        gemm(
            oc,
            t,
            ic,
            &u[xi * oc * ic..(xi + 1) * oc * ic],
            &v[xi * ic * t..(xi + 1) * ic * t],
            &mut mbuf[xi * oc * t..(xi + 1) * oc * t],
        );
    }

    // Inverse transform: Y = A^T M A + bias per (oc, tile), clipping the
    // ragged right/bottom edge, where A^T = [[1,1,1,0],[0,1,-1,-1]].
    let span = phase_span(Phase::WinogradInverse);
    for o in 0..oc {
        let out_o = &mut out[o * n_pos..(o + 1) * n_pos];
        for ti in 0..t {
            let (ty, tx) = (ti / tiles_x, ti % tiles_x);
            let m_at = |xi: usize| mbuf[xi * oc * t + o * t + ti];
            // Rows: A^T M -> 2 rows of 4.
            let s: [[f32; 4]; 2] = [
                std::array::from_fn(|j| m_at(j) + m_at(4 + j) + m_at(8 + j)),
                std::array::from_fn(|j| m_at(4 + j) - m_at(8 + j) - m_at(12 + j)),
            ];
            // Columns: (A^T M) A -> 2x2, plus bias.
            for (dy, srow) in s.iter().enumerate() {
                let oy = ty * 2 + dy;
                if oy >= geom.out_h {
                    break;
                }
                let y = [
                    srow[0] + srow[1] + srow[2] + bias[o],
                    srow[1] - srow[2] - srow[3] + bias[o],
                ];
                for (dx, &val) in y.iter().enumerate() {
                    let ox = tx * 2 + dx;
                    if ox < geom.out_w {
                        out_o[oy * geom.out_w + ox] = val;
                    }
                }
            }
        }
    }
    if let Some(s) = span {
        s.finish((16 * oc * t) as u64, 4 * (16 * oc * t + oc * n_pos) as u64);
    }
}

/// Absolute error bound of [`conv2d_winograd`] vs the im2col reference,
/// per output element, for this layer's actual operands.
///
/// The F(2x2,3x3) transforms amplify magnitudes by at most 4 (`B^T d B`)
/// and 2.25 (`G g G^T`), each product chain then runs ~`patch_len`
/// accumulation steps plus the fixed-depth inverse, and every f32 step
/// contributes at most one half-ulp of the running magnitude. Folding
/// the amplification factors and the inverse-transform depth into one
/// safety constant gives
///
/// ```text
/// |winograd - im2col| <= 64 * patch_len * max|W| * max|X| * eps_f32
/// ```
///
/// which the property tests in `tests/conv_algorithms.rs` assert on
/// random operands (in practice the observed error is ~100x smaller).
pub fn winograd_error_bound(geom: &Conv2dGeometry, weight: &[f32], input: &[f32]) -> f32 {
    let max_abs = |xs: &[f32]| xs.iter().fold(0.0f32, |a, &x| a.max(x.abs()));
    64.0 * geom.patch_len() as f32 * max_abs(weight) * max_abs(input) * f32::EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm_bias, im2col};

    fn reference(
        geom: &Conv2dGeometry,
        oc: usize,
        weight: &[f32],
        bias: &[f32],
        input: &[f32],
    ) -> Vec<f32> {
        let (k, n) = (geom.patch_len(), geom.out_positions());
        let mut cols = vec![0.0; k * n];
        im2col(geom, input, &mut cols);
        let mut out = vec![0.0; oc * n];
        gemm_bias(oc, n, k, weight, &cols, bias, &mut out);
        out
    }

    fn fixture(geom: &Conv2dGeometry, oc: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let weight: Vec<f32> = (0..oc * geom.patch_len())
            .map(|i| ((i * 31 % 23) as f32 - 11.0) / 16.0)
            .collect();
        let bias: Vec<f32> = (0..oc).map(|i| i as f32 / 8.0 - 0.25).collect();
        let input: Vec<f32> = (0..geom.in_channels * geom.in_h * geom.in_w)
            .map(|i| ((i * 17 % 29) as f32 - 14.0) / 8.0)
            .collect();
        (weight, bias, input)
    }

    #[test]
    fn direct_matches_im2col_bitwise_on_alexnet_conv1_shape() {
        // Strided, unpadded, multi-channel: 11x11 stride 4 on 3x31x31.
        let geom = Conv2dGeometry::new(3, 31, 31, 11, 4, 0);
        let oc = 8;
        let (w, b, x) = fixture(&geom, oc);
        let want = reference(&geom, oc, &w, &b, &x);
        let mut got = vec![f32::NAN; oc * geom.out_positions()];
        conv2d_direct(&geom, oc, &w, &b, &x, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn winograd_within_documented_bound_on_3x3_layer() {
        let geom = Conv2dGeometry::new(4, 13, 13, 3, 1, 1);
        let oc = 6;
        let (w, b, x) = fixture(&geom, oc);
        let want = reference(&geom, oc, &w, &b, &x);
        let mut got = vec![f32::NAN; oc * geom.out_positions()];
        conv2d_winograd(&geom, oc, &w, &b, &x, &mut got);
        let bound = winograd_error_bound(&geom, &w, &x);
        for (i, (g, r)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - r).abs() <= bound,
                "element {i}: {g} vs {r} (bound {bound})"
            );
        }
    }

    #[test]
    fn winograd_exact_on_small_integers() {
        // Integer-valued operands keep every transform step exact (all
        // coefficients are 0/±1/±0.5 and 0.5 * even integers are exact),
        // so Winograd must agree with the reference to the bit.
        let geom = Conv2dGeometry::new(2, 8, 9, 3, 1, 1);
        let oc = 3;
        let weight: Vec<f32> = (0..oc * geom.patch_len())
            .map(|i| ((i % 5) as f32 - 2.0) * 2.0)
            .collect();
        let bias = vec![1.0, -2.0, 3.0];
        let input: Vec<f32> = (0..geom.in_channels * geom.in_h * geom.in_w)
            .map(|i| ((i % 7) as f32 - 3.0) * 2.0)
            .collect();
        let want = reference(&geom, oc, &weight, &bias, &input);
        let mut got = vec![f32::NAN; oc * geom.out_positions()];
        conv2d_winograd(&geom, oc, &weight, &bias, &input, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn winograd_rejects_unsupported_geometry() {
        assert!(!ConvAlgo::Winograd.supports(&Conv2dGeometry::new(1, 8, 8, 3, 2, 1)));
        assert!(!ConvAlgo::Winograd.supports(&Conv2dGeometry::new(1, 8, 8, 5, 1, 2)));
        assert!(ConvAlgo::Winograd.supports(&Conv2dGeometry::new(1, 8, 8, 3, 1, 0)));
    }

    #[test]
    #[should_panic(expected = "winograd F(2x2,3x3) requires")]
    fn winograd_panics_on_stride_2() {
        let geom = Conv2dGeometry::new(1, 8, 8, 3, 2, 1);
        let mut out = vec![0.0; geom.out_positions()];
        conv2d_winograd(&geom, 1, &[0.0; 9], &[0.0], &[0.0; 64], &mut out);
    }

    #[test]
    fn algo_names_round_trip() {
        for a in ConvAlgo::ALL {
            assert_eq!(ConvAlgo::parse(a.name()), Some(a));
            assert_eq!(format!("{a}"), a.name());
        }
        assert_eq!(ConvAlgo::parse("fft"), None);
    }
}
