//! Heterogeneous fleet serving: per-platform descriptors and the routing
//! seam in front of the dispatch loop.
//!
//! The paper's premise is user-satisfactory CNN *across* GPU
//! microarchitectures; a deployed service runs the mix it has — a K20c
//! next to a Jetson TX1 — not four copies of one card. A [`Platform`]
//! bundles a [`GpuArch`] with its **own** offline-compiled
//! [`DegradationLadder`] and a capability profile, so each device walks
//! its ladder independently (the TX1 can sit two rungs deep while the
//! K20c serves unperforated) and the cost oracle caches per-platform
//! schedules keyed by that platform's ladder.
//!
//! In front of the dispatch loop sits a [`Router`]: given the workload at
//! the head of the priority order and the set of idle platforms, it picks
//! where (or whether) to place the batch. Four built-in policies
//! ([`RouterPolicy`]) cover the fleet-placement space the literature
//! spans:
//!
//! * **round-robin** — capability-blind rotation, the comparison
//!   baseline;
//! * **affinity** — big batches to big GPUs, tight-`T_user` traffic to
//!   the platform predicted fastest *that still meets the head deadline*;
//!   deadline work waits for a busy platform rather than burn a request
//!   on one that cannot make it;
//! * **energy** — Castro-style placement: among the platforms meeting
//!   the deadline, take the one minimizing predicted joules per image;
//! * **steal** — affinity placement, but an idle platform takes
//!   background work whose preferred (bigger) platform is busy instead of
//!   letting its own slack burn.

use pcnn_core::prelude::*;
use pcnn_data::WorkloadKind;
use pcnn_gpu::GpuArch;

use crate::config::DegradationLadder;
use crate::server::CostOracle;

const EPS: f64 = 1e-12;

/// Capability profile of one platform, derived from its architecture
/// descriptor: the coarse numbers routing policies sort by without
/// running the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capability {
    /// Peak single-precision throughput, FLOP/s.
    pub peak_flops: f64,
    /// DRAM bandwidth, GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Constant platform power while idle (board, NoC, MC), watts.
    pub idle_w: f64,
}

impl Capability {
    /// Derives the profile from an architecture descriptor.
    pub fn of(arch: &GpuArch) -> Self {
        Self {
            peak_flops: arch.peak_flops(),
            mem_bandwidth_gbps: arch.mem_bandwidth_gbps,
            idle_w: arch.energy.constant_w,
        }
    }
}

/// One serving platform: an architecture plus the degradation ladder
/// compiled offline *for that architecture* and its capability profile.
#[derive(Debug, Clone)]
pub struct Platform<'a> {
    /// The GPU microarchitecture descriptor.
    pub arch: &'a GpuArch,
    /// This platform's own degradation ladder. Platforms in one fleet may
    /// (and usually do) carry different ladders — a mobile part sheds
    /// work earlier and deeper than a server part.
    pub ladder: DegradationLadder,
    /// Coarse capability numbers for routing decisions.
    pub capability: Capability,
}

impl<'a> Platform<'a> {
    /// Bundles an architecture with its offline-compiled ladder.
    pub fn new(arch: &'a GpuArch, ladder: DegradationLadder) -> Self {
        Self {
            arch,
            capability: Capability::of(arch),
            ladder,
        }
    }
}

/// The built-in routing policies. Plain data so it can live in
/// [`ServerConfig`](crate::ServerConfig) and be compared/printed; each
/// value builds its [`Router`] implementation via [`RouterPolicy::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterPolicy {
    /// Capability-blind rotation over idle platforms.
    #[default]
    RoundRobin,
    /// Platform-affinity placement (deadline-aware, capability-sorted).
    Affinity,
    /// Energy-aware placement: minimum predicted joules/image subject to
    /// the deadline.
    EnergyAware,
    /// Affinity plus cross-GPU work stealing for background slack.
    WorkStealing,
}

impl RouterPolicy {
    /// The stable name used in reports, baselines and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::Affinity => "affinity",
            RouterPolicy::EnergyAware => "energy",
            RouterPolicy::WorkStealing => "steal",
        }
    }

    /// Parses a policy name as printed by [`RouterPolicy::name`].
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "round-robin" | "roundrobin" | "rr" => Some(RouterPolicy::RoundRobin),
            "affinity" => Some(RouterPolicy::Affinity),
            "energy" | "energy-aware" => Some(RouterPolicy::EnergyAware),
            "steal" | "work-stealing" => Some(RouterPolicy::WorkStealing),
            _ => None,
        }
    }

    /// Every built-in policy, in the canonical comparison order.
    pub fn all() -> [RouterPolicy; 4] {
        [
            RouterPolicy::RoundRobin,
            RouterPolicy::Affinity,
            RouterPolicy::EnergyAware,
            RouterPolicy::WorkStealing,
        ]
    }

    /// Builds the policy's router. Fresh state per run, so a `Server` can
    /// be run repeatedly with identical results.
    pub fn build(&self) -> Box<dyn Router> {
        match self {
            RouterPolicy::RoundRobin => Box::new(RoundRobinRouter { next: 0 }),
            RouterPolicy::Affinity => Box::new(AffinityRouter { steal: false }),
            RouterPolicy::EnergyAware => Box::new(EnergyAwareRouter),
            RouterPolicy::WorkStealing => Box::new(AffinityRouter { steal: true }),
        }
    }
}

/// Everything a router may consult about the dispatch decision at hand.
/// Slices are indexed by platform, in fleet order.
#[derive(Debug)]
pub struct RouteCtx<'c> {
    /// Index of the workload whose batch is being placed.
    pub workload: usize,
    /// The workload's task class.
    pub kind: WorkloadKind,
    /// The workload's deadline, `None` for background work.
    pub t_user: Option<f64>,
    /// Current virtual time.
    pub now: f64,
    /// Arrival time of the request at the head of the queue.
    pub head_arrival: f64,
    /// Request id (within the workload) at the head of the queue — what
    /// the audit trail keys "why did request X land on platform P" by.
    pub head_req: usize,
    /// Images currently queued for this workload.
    pub queue_len: usize,
    /// Queue fill fraction (`queue_len / capacity`).
    pub queue_fill: f64,
    /// Idle platform indices, ascending. Never empty when `route` is
    /// called.
    pub idle: &'c [usize],
    /// When each platform frees up (`<= now` for idle ones).
    pub free_at: &'c [f64],
    /// This workload's current ladder level on each platform.
    pub levels: &'c [usize],
    /// This workload's target batch on each platform.
    pub targets: &'c [usize],
    /// Each platform's peak throughput, FLOP/s.
    pub peak_flops: &'c [f64],
}

impl RouteCtx<'_> {
    /// The batch size a dispatch on platform `p` would aim for.
    pub fn batch_on(&self, p: usize) -> usize {
        self.queue_len.min(self.targets[p]).max(1)
    }

    /// The head request's absolute deadline, if any.
    pub fn deadline(&self) -> Option<f64> {
        self.t_user.map(|t| self.head_arrival + t)
    }
}

/// Why a router placed (or held) a batch — the reason code the audit
/// trail records with every decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RouteReason {
    /// Capability-blind rotation landed here.
    RoundRobin,
    /// Chosen for deadline slack: the fastest platform among several
    /// that meet the head deadline (others were skipped for slack).
    DeadlineSlack,
    /// Chosen for the lowest predicted joules per image.
    JoulesPerImage,
    /// Background affinity: pinned to a preferred (highest-peak) idle
    /// platform.
    Affinity,
    /// Stolen: an idle platform took work whose preferred platform is
    /// busy.
    Steal,
    /// The only candidate considered (a single idle platform) — no
    /// ranking happened.
    OnlyFeasible,
    /// Held: no idle platform meets the deadline, but a busy one will —
    /// the batch waits for it.
    HoldForBusy,
    /// Shed: the head misses everywhere; sent to the fastest platform to
    /// clear it.
    Shed,
}

impl RouteReason {
    /// The stable name recorded in telemetry events and printed by
    /// `pcnn obs route`.
    pub fn name(&self) -> &'static str {
        match self {
            RouteReason::RoundRobin => "RoundRobin",
            RouteReason::DeadlineSlack => "DeadlineSlack",
            RouteReason::JoulesPerImage => "JoulesPerImage",
            RouteReason::Affinity => "Affinity",
            RouteReason::Steal => "Steal",
            RouteReason::OnlyFeasible => "OnlyFeasible",
            RouteReason::HoldForBusy => "HoldForBusy",
            RouteReason::Shed => "Shed",
        }
    }
}

/// The score a router computed for one candidate platform — kept in the
/// decision so the audit trail can show what was *rejected*, not just
/// what won.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateScore {
    /// Platform index in fleet order.
    pub platform: usize,
    /// The batch size a dispatch here would aim for.
    pub batch: usize,
    /// Predicted batch latency on this platform, seconds.
    pub predicted_s: f64,
    /// Slack against the head deadline (`deadline - (now + predicted)`),
    /// `None` for background work.
    pub slack_s: Option<f64>,
    /// Predicted joules per image at this batch size.
    pub joules_per_image: f64,
    /// Whether this platform meets the head deadline (always true for
    /// background work).
    pub feasible: bool,
}

/// What a router decided, and why: the chosen platform (or a hold), the
/// reason code, the per-candidate scores it weighed, and — for stolen
/// work — the platform the work was pinned to.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteDecision {
    /// The platform the batch goes to, or `None` to hold it for a busy
    /// platform (the event loop retries when one frees).
    pub platform: Option<usize>,
    /// Why.
    pub reason: RouteReason,
    /// The candidates weighed, in idle-platform order. Only collected
    /// while telemetry is enabled — the serving outcome never depends on
    /// it.
    pub candidates: Vec<CandidateScore>,
    /// For [`RouteReason::Steal`]: the busy platform the work preferred.
    pub stolen_from: Option<usize>,
}

impl RouteDecision {
    /// A placement on platform `p`.
    pub fn place(p: usize, reason: RouteReason) -> Self {
        Self {
            platform: Some(p),
            reason,
            candidates: Vec::new(),
            stolen_from: None,
        }
    }

    /// A hold — the batch waits for a busy platform.
    pub fn hold(reason: RouteReason) -> Self {
        Self {
            platform: None,
            reason,
            candidates: Vec::new(),
            stolen_from: None,
        }
    }

    /// Attaches the candidate scores (builder-style).
    #[must_use]
    pub fn with_candidates(mut self, candidates: Vec<CandidateScore>) -> Self {
        self.candidates = candidates;
        self
    }
}

/// Scores every idle platform for the audit trail. Collected only while
/// telemetry is enabled; the extra oracle queries are memoized pure
/// lookups, so they can never perturb the serving outcome — but skipping
/// them keeps the disabled path at literally zero cost.
fn scored_candidates(
    ctx: &RouteCtx<'_>,
    costs: &mut CostOracle<'_>,
) -> Result<Vec<CandidateScore>> {
    if !pcnn_telemetry::enabled() {
        return Ok(Vec::new());
    }
    let deadline = ctx.deadline();
    let mut out = Vec::with_capacity(ctx.idle.len());
    for &p in ctx.idle {
        let batch = ctx.batch_on(p);
        let c = costs.cost(p, ctx.levels[p], batch)?;
        let slack_s = deadline.map(|d| d - (ctx.now + c.seconds));
        out.push(CandidateScore {
            platform: p,
            batch,
            predicted_s: c.seconds,
            slack_s,
            joules_per_image: c.energy.total_j() / batch.max(1) as f64,
            feasible: slack_s.is_none_or(|s| s >= -EPS),
        });
    }
    Ok(out)
}

/// The routing seam: given a dispatchable workload and the idle platform
/// set, pick the platform to place the batch on — or decide to hold the
/// batch for a busy platform (the event loop retries when one frees).
///
/// Contract: the decision's platform must be in `ctx.idle`, and a router
/// must place (not hold) whenever *every* platform is idle (otherwise the
/// loop could stall with no pending event). Implementations must be
/// deterministic — same context, same answer — to keep reports
/// byte-identical per seed. The reason code and candidate scores in the
/// returned [`RouteDecision`] feed the audit trail; the candidates field
/// may stay empty while telemetry is disabled.
pub trait Router {
    /// Decides where the batch goes, querying predicted cost and energy
    /// through the per-platform oracle.
    ///
    /// # Errors
    ///
    /// Propagates offline-compilation errors from the cost oracle.
    fn route(&mut self, ctx: &RouteCtx<'_>, costs: &mut CostOracle<'_>) -> Result<RouteDecision>;
}

/// Capability-blind rotation: the baseline every placement policy is
/// measured against.
pub struct RoundRobinRouter {
    next: usize,
}

impl Router for RoundRobinRouter {
    fn route(&mut self, ctx: &RouteCtx<'_>, costs: &mut CostOracle<'_>) -> Result<RouteDecision> {
        let n = ctx.free_at.len();
        let g = (0..n)
            .map(|k| (self.next + k) % n)
            .find(|p| ctx.idle.contains(p))
            .unwrap_or(ctx.idle[0]);
        self.next = (g + 1) % n;
        Ok(RouteDecision::place(g, RouteReason::RoundRobin)
            .with_candidates(scored_candidates(ctx, costs)?))
    }
}

/// The fastest idle platform that still meets the head deadline, or a
/// hold when only a busy platform can make it (wait for it) — shared by
/// the affinity and energy policies. `key` ranks the platforms that meet
/// the deadline (smaller is better); `reason` is the code recorded when
/// that ranking picked among several candidates.
fn deadline_place(
    ctx: &RouteCtx<'_>,
    costs: &mut CostOracle<'_>,
    deadline: f64,
    mut key: impl FnMut(usize, &NetworkCost) -> f64,
    reason: RouteReason,
) -> Result<RouteDecision> {
    let candidates = scored_candidates(ctx, costs)?;
    let mut best: Option<(f64, usize)> = None;
    let mut fastest: Option<(f64, usize)> = None;
    for &p in ctx.idle {
        let c = costs.cost(p, ctx.levels[p], ctx.batch_on(p))?;
        if ctx.now + c.seconds <= deadline + EPS {
            let k = key(p, &c);
            if best.is_none_or(|(bk, bp)| (k, p) < (bk, bp)) {
                best = Some((k, p));
            }
        }
        if fastest.is_none_or(|(fs, fp)| (c.seconds, p) < (fs, fp)) {
            fastest = Some((c.seconds, p));
        }
    }
    if let Some((_, p)) = best {
        // With a single idle candidate no ranking happened; with several
        // the caller's reason (slack, joules/image) names the criterion.
        let reason = if ctx.idle.len() == 1 {
            RouteReason::OnlyFeasible
        } else {
            reason
        };
        return Ok(RouteDecision::place(p, reason).with_candidates(candidates));
    }
    // No idle platform makes it. If a busy one could once free, hold the
    // batch for it — a guaranteed miss helps nobody.
    for (p, &free) in ctx.free_at.iter().enumerate() {
        if free <= ctx.now + EPS {
            continue;
        }
        let c = costs.cost(p, ctx.levels[p], ctx.batch_on(p))?;
        if free.max(ctx.now) + c.seconds <= deadline + EPS {
            return Ok(RouteDecision::hold(RouteReason::HoldForBusy).with_candidates(candidates));
        }
    }
    // The head misses everywhere: shed it as fast as possible.
    let (_, p) = fastest.expect("route called with a non-empty idle set");
    Ok(RouteDecision::place(p, RouteReason::Shed).with_candidates(candidates))
}

/// Platform-affinity placement. Deadline traffic goes to the fastest
/// platform that meets the head deadline; background batches are pinned
/// to the highest-peak platforms (big batches to big GPUs). With `steal`
/// set, an idle platform takes background work whose preferred platform
/// is busy instead of idling — cross-GPU work stealing.
pub struct AffinityRouter {
    steal: bool,
}

impl Router for AffinityRouter {
    fn route(&mut self, ctx: &RouteCtx<'_>, costs: &mut CostOracle<'_>) -> Result<RouteDecision> {
        match ctx.deadline() {
            Some(deadline) => deadline_place(
                ctx,
                costs,
                deadline,
                |_, c| c.seconds,
                RouteReason::DeadlineSlack,
            ),
            None => {
                // Background: prefer the biggest platforms in the fleet.
                let max_peak = ctx.peak_flops.iter().copied().fold(0.0, f64::max);
                let preferred = ctx
                    .idle
                    .iter()
                    .copied()
                    .find(|&p| ctx.peak_flops[p] >= max_peak - EPS);
                let candidates = scored_candidates(ctx, costs)?;
                match preferred {
                    Some(p) => {
                        Ok(RouteDecision::place(p, RouteReason::Affinity)
                            .with_candidates(candidates))
                    }
                    // Every top platform is busy: steal onto the biggest
                    // idle one, or hold the batch for the big GPU.
                    None if self.steal => {
                        let target = ctx
                            .idle
                            .iter()
                            .copied()
                            .max_by(|&a, &b| {
                                ctx.peak_flops[a]
                                    .total_cmp(&ctx.peak_flops[b])
                                    .then(b.cmp(&a))
                            })
                            .expect("route called with a non-empty idle set");
                        // The platform the work *preferred*: the first
                        // top-peak platform in fleet order (busy, or we
                        // would have placed there).
                        let from = ctx
                            .peak_flops
                            .iter()
                            .position(|&f| f >= max_peak - EPS)
                            .unwrap_or(0);
                        let mut d = RouteDecision::place(target, RouteReason::Steal)
                            .with_candidates(candidates);
                        d.stolen_from = Some(from);
                        Ok(d)
                    }
                    None => {
                        Ok(RouteDecision::hold(RouteReason::HoldForBusy)
                            .with_candidates(candidates))
                    }
                }
            }
        }
    }
}

/// Energy-aware placement: among the platforms that meet the head
/// deadline, take the one with the lowest predicted joules per image;
/// background batches always chase joules per image.
pub struct EnergyAwareRouter;

impl Router for EnergyAwareRouter {
    fn route(&mut self, ctx: &RouteCtx<'_>, costs: &mut CostOracle<'_>) -> Result<RouteDecision> {
        let per_image =
            |p: usize, c: &NetworkCost| c.energy.total_j() / ctx.batch_on(p).max(1) as f64;
        match ctx.deadline() {
            Some(deadline) => {
                deadline_place(ctx, costs, deadline, per_image, RouteReason::JoulesPerImage)
            }
            None => {
                let mut best: Option<(f64, usize)> = None;
                for &p in ctx.idle {
                    let c = costs.cost(p, ctx.levels[p], ctx.batch_on(p))?;
                    let k = per_image(p, &c);
                    if best.is_none_or(|(bk, bp)| (k, p) < (bk, bp)) {
                        best = Some((k, p));
                    }
                }
                let (_, p) = best.expect("route called with a non-empty idle set");
                let reason = if ctx.idle.len() == 1 {
                    RouteReason::OnlyFeasible
                } else {
                    RouteReason::JoulesPerImage
                };
                Ok(RouteDecision::place(p, reason).with_candidates(scored_candidates(ctx, costs)?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in RouterPolicy::all() {
            assert_eq!(RouterPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(RouterPolicy::parse("rr"), Some(RouterPolicy::RoundRobin));
        assert_eq!(RouterPolicy::parse("nope"), None);
        assert_eq!(RouterPolicy::default(), RouterPolicy::RoundRobin);
    }

    #[test]
    fn route_reason_names_are_stable() {
        let all = [
            (RouteReason::RoundRobin, "RoundRobin"),
            (RouteReason::DeadlineSlack, "DeadlineSlack"),
            (RouteReason::JoulesPerImage, "JoulesPerImage"),
            (RouteReason::Affinity, "Affinity"),
            (RouteReason::Steal, "Steal"),
            (RouteReason::OnlyFeasible, "OnlyFeasible"),
            (RouteReason::HoldForBusy, "HoldForBusy"),
            (RouteReason::Shed, "Shed"),
        ];
        for (reason, name) in all {
            assert_eq!(reason.name(), name);
        }
    }

    #[test]
    fn decision_constructors_fill_the_obvious_fields() {
        let d = RouteDecision::place(1, RouteReason::Affinity);
        assert_eq!(d.platform, Some(1));
        assert_eq!(d.reason, RouteReason::Affinity);
        assert!(d.candidates.is_empty());
        assert_eq!(d.stolen_from, None);
        let h = RouteDecision::hold(RouteReason::HoldForBusy);
        assert_eq!(h.platform, None);
        let c = RouteDecision::place(0, RouteReason::Shed).with_candidates(vec![CandidateScore {
            platform: 0,
            batch: 4,
            predicted_s: 0.02,
            slack_s: Some(-0.01),
            joules_per_image: 0.3,
            feasible: false,
        }]);
        assert_eq!(c.candidates.len(), 1);
        assert!(!c.candidates[0].feasible);
    }

    #[test]
    fn capability_profile_tracks_arch() {
        let cap = Capability::of(&pcnn_gpu::arch::K20C);
        assert!((cap.peak_flops - pcnn_gpu::arch::K20C.peak_flops()).abs() < 1.0);
        assert_eq!(cap.idle_w, pcnn_gpu::arch::K20C.energy.constant_w);
        let tx1 = Capability::of(&pcnn_gpu::arch::JETSON_TX1);
        assert!(tx1.peak_flops < cap.peak_flops);
        assert!(tx1.idle_w < cap.idle_w);
    }
}
