//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges. The generator is
//! SplitMix64 — statistically solid for synthetic datasets and weight
//! initialisation, deterministic for a given seed, but *not* the same
//! stream as upstream `StdRng` (ChaCha12); seeds produce different but
//! equally valid data.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface; only the `u64` convenience constructor is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! impl_float_range {
    ($t:ty, $unit:ident) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let v = self.start + $unit(rng) * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + $unit(rng) * (hi - lo)
            }
        }
    };
}

impl_float_range!(f64, unit_f64);
impl_float_range!(f32, unit_f32);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed replacement for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood) — full 2^64 period.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Alias: the "small" generator is the same SplitMix64 core here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(1e-7f32..1.0);
            assert!((1e-7..1.0).contains(&f));
            let g = rng.gen_range(-0.2f32..0.2);
            assert!((-0.2..0.2).contains(&g));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(0.5f64..=2.5);
            assert!((0.5..=2.5).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
