//! Per-request observability, SLO monitoring and the incident flight
//! recorder for the serving loop.
//!
//! Everything here is stamped in *virtual* time — the simulator's clock,
//! not the wall clock — so an enabled-telemetry run exports byte-identical
//! traces for identical inputs, and a disabled-telemetry run is untouched
//! (the recorder is never constructed; see [`Obs::maybe`]).
//!
//! Four export surfaces are fed:
//!
//! * **Per-request lifecycle slices** on the observability process (pid 3
//!   in the Chrome trace): each request's queue wait and execution render
//!   on its workload's track, each dispatched batch on its GPU's track,
//!   causally linked through a `batch` argument. Admission rejections,
//!   ladder moves, routing decisions and SLO alerts are instant events on
//!   the same tracks.
//! * **Windowed series** ([`pcnn_telemetry::WindowedSeries`]): throughput,
//!   queue depth, latency, deadline hits, ladder level, batch occupancy
//!   and oracle error (predicted vs dispatched batch latency) per
//!   fixed-width virtual-time window — per workload *and*, under a
//!   `platform:<arch>` label, per platform — exported as Chrome counter
//!   tracks, manifest `window` records and Prometheus totals (the
//!   `platform:` prefix renders as a `platform="…"` label pair; see
//!   [`pcnn_telemetry::prom::PLATFORM_LABEL_PREFIX`]).
//! * **Routing audit trail**: every [`RouteDecision`] the router returns —
//!   placements, holds and steals alike — lands as a `route.decision`
//!   instant carrying the chosen platform, the reason code and every
//!   candidate's rejected score, answering "why did request X land on
//!   platform P" offline (`pcnn obs route`).
//! * **SLO alerts + incident snapshot**: per-workload and per-platform
//!   objectives ([`SloPolicy`]) are evaluated as each window closes;
//!   violations emit `slo.alert` / `slo.platform_alert` instants carrying
//!   the error-budget burn rate, and the *first* alert of a run freezes
//!   the [`FlightRecorder`] — the last few closed windows plus recent
//!   route decisions and ladder moves — into a self-contained JSON
//!   incident snapshot ([`pcnn_telemetry::record_incident`]) for
//!   postmortem without a full trace.

use pcnn_data::WorkloadKind;
use pcnn_telemetry::windowed::WindowValue;
use pcnn_telemetry::{self as telemetry, json, Ring, Value, WindowedSeries};

use crate::config::{ServeWorkload, ServerConfig};
use crate::fleet::{Platform, RouteCtx, RouteDecision, RouteReason};

/// Closed-window snapshots the flight recorder keeps.
const FLIGHT_WINDOWS: usize = 8;
/// Route decisions the flight recorder keeps.
const FLIGHT_DECISIONS: usize = 64;
/// Ladder moves the flight recorder keeps.
const FLIGHT_LADDER: usize = 64;

/// Per-workload (or per-platform) service-level objectives, evaluated
/// once per virtual-time window (width [`ServerConfig::obs_window_s`]).
/// Objectives left `None` are not monitored; a policy with every field
/// `None` never alerts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloPolicy {
    /// Deadline hit-rate floor for the window (`0.0 ..= 1.0`). The error
    /// budget is `1 - min_hit_rate`; a window burns at
    /// `miss_rate / budget`, and a burn rate above 1 alerts.
    pub min_hit_rate: Option<f64>,
    /// Ceiling on the window's p99 completion latency, seconds.
    pub max_p99_s: Option<f64>,
    /// Ceiling on the window's image-weighted mean output entropy (nats) —
    /// alerts when degradation is trading away more accuracy than the
    /// workload tolerates.
    pub max_entropy: Option<f64>,
}

impl SloPolicy {
    /// No objectives: never alerts.
    pub fn none() -> Self {
        Self::default()
    }

    /// The default policy a workload of `kind` gets when none is declared:
    /// real-time demands a 95 % hit rate and p99 within its deadline,
    /// interactive a 90 % hit rate and a 1.4-nat entropy ceiling (one rung
    /// above the default ladder's deepest level), background nothing.
    pub fn for_kind(kind: WorkloadKind, t_user: Option<f64>) -> Self {
        match kind {
            WorkloadKind::RealTime => Self {
                min_hit_rate: Some(0.95),
                max_p99_s: t_user,
                max_entropy: None,
            },
            WorkloadKind::Interactive => Self {
                min_hit_rate: Some(0.90),
                max_p99_s: None,
                max_entropy: Some(1.4),
            },
            WorkloadKind::Background => Self::none(),
        }
    }

    /// Validates objective domains.
    ///
    /// # Errors
    ///
    /// Returns [`pcnn_core::Error::InvalidInput`] when an objective is
    /// outside its domain.
    pub fn validate(&self) -> pcnn_core::Result<()> {
        if let Some(r) = self.min_hit_rate {
            if !(0.0..=1.0).contains(&r) {
                return Err(pcnn_core::Error::InvalidInput {
                    what: "slo min_hit_rate must be within [0, 1]",
                });
            }
        }
        if let Some(p) = self.max_p99_s {
            if !p.is_finite() || p <= 0.0 {
                return Err(pcnn_core::Error::InvalidInput {
                    what: "slo max_p99_s must be positive and finite",
                });
            }
        }
        if let Some(e) = self.max_entropy {
            if !e.is_finite() || e <= 0.0 {
                return Err(pcnn_core::Error::InvalidInput {
                    what: "slo max_entropy must be positive and finite",
                });
            }
        }
        Ok(())
    }
}

/// One request's worth of images inside a dispatched batch.
pub(crate) struct BatchMember {
    /// Request index within its workload.
    pub req: usize,
    /// The request's arrival time, virtual seconds.
    pub arrival: f64,
    /// Images of this request in this batch.
    pub images: usize,
}

/// A request that completed (its last image finished) at this dispatch.
pub(crate) struct Completion {
    /// Request index within its workload.
    pub req: usize,
    /// End-to-end latency, seconds.
    pub latency_s: f64,
    /// Completion time, virtual seconds.
    pub done: f64,
    /// Whether the deadline was met (`true` for no-deadline workloads).
    pub hit: bool,
}

/// The windowed-series label that groups a metric under a platform: the
/// `platform:` prefix renders as a `platform="…"` Prometheus label pair
/// instead of the generic `label="…"`.
fn platform_label(arch_name: &str) -> String {
    format!("{}{arch_name}", telemetry::prom::PLATFORM_LABEL_PREFIX)
}

/// Bounded rings of pre-rendered JSON fragments: the last few closed
/// windows, route decisions and ladder moves. Cheap enough to run on
/// every traced run (a few string clones per event, fixed memory), and
/// frozen into the incident snapshot when the first SLO alert fires.
struct FlightRecorder {
    windows: Ring<String>,
    decisions: Ring<String>,
    ladder: Ring<String>,
}

impl FlightRecorder {
    fn new() -> Self {
        Self {
            windows: Ring::new(FLIGHT_WINDOWS),
            decisions: Ring::new(FLIGHT_DECISIONS),
            ladder: Ring::new(FLIGHT_LADDER),
        }
    }
}

/// The per-run observability recorder. Constructed only when telemetry is
/// enabled, so the disabled path costs exactly one branch per call site.
pub(crate) struct Obs {
    windows: WindowedSeries,
    labels: Vec<String>,
    platform_names: Vec<String>,
    gpu_track: Vec<u64>,
    wl_track: Vec<u64>,
    /// Per-platform, per-rung output entropy — platforms carry their own
    /// ladders, so the tables are jagged.
    level_entropy: Vec<Vec<f64>>,
    slo: Vec<SloPolicy>,
    /// Per-platform objectives, indexed by platform
    /// ([`ServerConfig::platform_slos`]).
    platform_slo: Vec<Option<SloPolicy>>,
    /// First window index not yet closed (snapshotted + SLO-evaluated).
    next_window: u64,
    next_batch: u64,
    router: String,
    window_s: f64,
    flight: FlightRecorder,
    incident_fired: bool,
}

impl Obs {
    /// Builds the recorder when telemetry is on, registering one pid-3
    /// track per platform and per workload; `None` otherwise.
    pub(crate) fn maybe(
        router_name: &str,
        config: &ServerConfig,
        platforms: &[Platform<'_>],
        workloads: &[ServeWorkload],
    ) -> Option<Obs> {
        if !telemetry::enabled() {
            return None;
        }
        let gpu_track: Vec<u64> = (0..platforms.len() as u64).collect();
        let wl_track: Vec<u64> = (0..workloads.len() as u64)
            .map(|w| platforms.len() as u64 + w)
            .collect();
        for (g, p) in platforms.iter().enumerate() {
            telemetry::obs_track_name(gpu_track[g], &format!("gpu{g} ({})", p.arch.name));
        }
        let mut labels = Vec::with_capacity(workloads.len());
        let mut slo = Vec::with_capacity(workloads.len());
        for (w, workload) in workloads.iter().enumerate() {
            telemetry::obs_track_name(wl_track[w], &format!("workload: {}", workload.app.name));
            labels.push(workload.app.name.clone());
            slo.push(
                workload
                    .slo
                    .clone()
                    .unwrap_or_else(|| SloPolicy::for_kind(workload.app.kind, workload.t_user())),
            );
        }
        let mut platform_slo: Vec<Option<SloPolicy>> = vec![None; platforms.len()];
        for (g, policy) in &config.platform_slos {
            platform_slo[*g] = Some(policy.clone());
        }
        Some(Obs {
            windows: WindowedSeries::new(config.obs_window_s),
            labels,
            platform_names: platforms.iter().map(|p| p.arch.name.to_string()).collect(),
            gpu_track,
            wl_track,
            level_entropy: platforms
                .iter()
                .map(|p| p.ladder.levels.iter().map(|l| l.entropy).collect())
                .collect(),
            slo,
            platform_slo,
            next_window: 0,
            next_batch: 0,
            router: router_name.to_string(),
            window_s: config.obs_window_s,
            flight: FlightRecorder::new(),
            incident_fired: false,
        })
    }

    /// Records one arrival: admitted/rejected image counts and the queue
    /// depth after admission.
    pub(crate) fn on_arrival(
        &mut self,
        w: usize,
        req: usize,
        t: f64,
        admitted: usize,
        rejected: usize,
        queue_len: usize,
    ) {
        self.advance(t);
        let label = &self.labels[w];
        if admitted > 0 {
            self.windows
                .add(t, "serve.admitted", label, admitted as u64);
        }
        if rejected > 0 {
            self.windows
                .add(t, "serve.rejected", label, rejected as u64);
            telemetry::obs_instant("admission.reject", self.wl_track[w], t * 1e6, || {
                vec![
                    ("req", Value::U64(req as u64)),
                    ("images", Value::U64(rejected as u64)),
                ]
            });
        }
        self.windows
            .observe(t, "serve.queue_depth", label, queue_len as f64);
    }

    /// Records one routing decision — placement, hold or steal. Emits a
    /// `route.decision` instant on the workload's track carrying the
    /// chosen platform, the reason code, the queue depth at decision time
    /// and every candidate's score (so the audit trail can answer why the
    /// *other* platforms were passed over), bumps the windowed
    /// decision-by-reason and steal-flow counters, and appends the
    /// decision to the flight recorder.
    ///
    /// `dispatched` is `false` for holds, busy-platform returns and
    /// placements the dispatcher then vetoed (background starvation).
    pub(crate) fn on_route(
        &mut self,
        w: usize,
        now: f64,
        ctx: &RouteCtx<'_>,
        decision: &RouteDecision,
        dispatched: bool,
    ) {
        self.advance(now);
        let label = self.labels[w].clone();
        let platform = decision.platform.map(|p| self.platform_names[p].clone());
        let from = decision.stolen_from.map(|p| self.platform_names[p].clone());
        let reason = decision.reason.name();
        let candidates = encode_candidates(&self.platform_names, decision);
        telemetry::obs_instant("route.decision", self.wl_track[w], now * 1e6, || {
            let mut args = vec![
                ("workload", Value::Str(label.clone())),
                ("req", Value::U64(ctx.head_req as u64)),
                (
                    "platform",
                    Value::Str(platform.clone().unwrap_or_else(|| "hold".to_string())),
                ),
                ("reason", Value::Str(reason.to_string())),
                ("dispatched", Value::Bool(dispatched)),
                ("queue", Value::U64(ctx.queue_len as u64)),
                ("candidates", Value::Str(candidates.clone())),
            ];
            if let Some(f) = &from {
                args.push(("from", Value::Str(f.clone())));
            }
            args
        });
        self.windows.add(now, "route.decisions", reason, 1);
        if decision.reason == RouteReason::Steal && dispatched {
            if let (Some(f), Some(t)) = (&from, &platform) {
                self.windows
                    .add(now, "route.steals", &format!("{f}->{t}"), 1);
            }
        }
        let mut rec = String::with_capacity(256);
        rec.push_str("{\"t_s\":");
        json::write_number(&mut rec, now);
        rec.push_str(",\"workload\":");
        json::write_escaped(&mut rec, &label);
        rec.push_str(",\"req\":");
        json::write_number(&mut rec, ctx.head_req as f64);
        rec.push_str(",\"platform\":");
        match &platform {
            Some(p) => json::write_escaped(&mut rec, p),
            None => rec.push_str("null"),
        }
        rec.push_str(",\"reason\":");
        json::write_escaped(&mut rec, reason);
        rec.push_str(",\"dispatched\":");
        rec.push_str(if dispatched { "true" } else { "false" });
        rec.push_str(",\"queue\":");
        json::write_number(&mut rec, ctx.queue_len as f64);
        if let Some(f) = &from {
            rec.push_str(",\"from\":");
            json::write_escaped(&mut rec, f);
        }
        rec.push_str(",\"candidates\":[");
        for (i, c) in decision.candidates.iter().enumerate() {
            if i > 0 {
                rec.push(',');
            }
            rec.push_str("{\"platform\":");
            json::write_escaped(&mut rec, &self.platform_names[c.platform]);
            rec.push_str(",\"batch\":");
            json::write_number(&mut rec, c.batch as f64);
            rec.push_str(",\"predicted_s\":");
            json::write_number(&mut rec, c.predicted_s);
            rec.push_str(",\"slack_s\":");
            match c.slack_s {
                Some(s) => json::write_number(&mut rec, s),
                None => rec.push_str("null"),
            }
            rec.push_str(",\"joules_per_image\":");
            json::write_number(&mut rec, c.joules_per_image);
            rec.push_str(",\"feasible\":");
            rec.push_str(if c.feasible { "true" } else { "false" });
            rec.push('}');
        }
        rec.push_str("]}");
        self.flight.decisions.push(rec);
    }

    /// Records a ladder move (`up` = deeper / more perforation) on
    /// platform `g`.
    pub(crate) fn on_degrade(&mut self, w: usize, g: usize, t: f64, level: usize, up: bool) {
        self.advance(t);
        let name = if up { "degrade.up" } else { "degrade.down" };
        let platform = self.platform_names[g].clone();
        telemetry::obs_instant(name, self.wl_track[w], t * 1e6, || {
            vec![
                ("level", Value::U64(level as u64)),
                ("platform", Value::Str(platform.clone())),
            ]
        });
        let mut rec = String::with_capacity(96);
        rec.push_str("{\"t_s\":");
        json::write_number(&mut rec, t);
        rec.push_str(",\"workload\":");
        json::write_escaped(&mut rec, &self.labels[w]);
        rec.push_str(",\"platform\":");
        json::write_escaped(&mut rec, &platform);
        rec.push_str(",\"level\":");
        json::write_number(&mut rec, level as f64);
        rec.push_str(",\"dir\":\"");
        rec.push_str(if up { "up" } else { "down" });
        rec.push_str("\"}");
        self.flight.ladder.push(rec);
    }

    /// Records one dispatched batch: the batch slice on the GPU track,
    /// queue/execute slices per member request on the workload track
    /// (causally linked via the batch id), windowed dispatch metrics —
    /// per workload *and* per platform — and the completions this batch
    /// finishes.
    ///
    /// `planned_s` is the latency the batcher *planned* for (pre-
    /// adjustment ladder level and size); `actual_s` is the dispatched
    /// batch's simulated latency — their relative gap is the oracle
    /// error. `energy_j` is the batch's predicted energy and
    /// `queue_after` the workload queue depth once the batch popped.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_dispatch(
        &mut self,
        w: usize,
        g: usize,
        now: f64,
        finish: f64,
        level: usize,
        size: usize,
        target_batch: usize,
        planned_s: f64,
        actual_s: f64,
        energy_j: f64,
        queue_after: usize,
        members: &[BatchMember],
        completions: &[Completion],
    ) {
        self.advance(now);
        let label = self.labels[w].clone();
        let plabel = platform_label(&self.platform_names[g]);
        let batch = self.next_batch;
        self.next_batch += 1;
        let batch_name = format!("batch {batch}: {label} x{size} L{level}");
        telemetry::obs_slice(
            &batch_name,
            self.gpu_track[g],
            now * 1e6,
            (finish - now) * 1e6,
            || {
                vec![
                    ("batch", Value::U64(batch)),
                    ("workload", Value::Str(label.clone())),
                    ("size", Value::U64(size as u64)),
                    ("level", Value::U64(level as u64)),
                    ("planned_s", Value::F64(planned_s)),
                    ("actual_s", Value::F64(actual_s)),
                ]
            },
        );
        for m in members {
            let queue_name = format!("req {label}#{}: queue", m.req);
            let exec_name = format!("req {label}#{}: execute", m.req);
            telemetry::obs_slice(
                &queue_name,
                self.wl_track[w],
                m.arrival * 1e6,
                (now - m.arrival).max(0.0) * 1e6,
                || {
                    vec![
                        ("batch", Value::U64(batch)),
                        ("images", Value::U64(m.images as u64)),
                    ]
                },
            );
            telemetry::obs_slice(
                &exec_name,
                self.wl_track[w],
                now * 1e6,
                (finish - now) * 1e6,
                || {
                    vec![
                        ("batch", Value::U64(batch)),
                        ("gpu", Value::U64(g as u64)),
                        ("images", Value::U64(m.images as u64)),
                    ]
                },
            );
        }
        // Windowed dispatch metrics: level/occupancy/oracle error at the
        // dispatch instant, throughput and entropy at the finish instant.
        self.windows
            .observe(now, "serve.level", &label, level as f64);
        let occupancy = size as f64 / target_batch.max(1) as f64;
        self.windows
            .observe(now, "serve.batch_occupancy", &label, occupancy);
        let oracle_err = (planned_s - actual_s).abs() / actual_s.max(1e-12);
        self.windows
            .observe(now, "serve.oracle_error", &label, oracle_err);
        self.windows
            .add(finish, "serve.throughput", &label, size as u64);
        self.windows
            .add(now, "serve.dispatches", &format!("gpu{g}"), 1);
        // The same dispatch re-keyed by platform: the per-platform SLO
        // monitors and the `platform="…"` Prometheus families read these.
        self.windows
            .observe(now, "fleet.level", &plabel, level as f64);
        self.windows
            .observe(now, "fleet.occupancy", &plabel, occupancy);
        self.windows
            .observe(now, "fleet.oracle_error", &plabel, oracle_err);
        self.windows
            .observe(now, "fleet.batch_planned_s", &plabel, planned_s);
        self.windows
            .observe(now, "fleet.batch_s", &plabel, actual_s);
        self.windows
            .observe(now, "fleet.energy_j", &plabel, energy_j);
        self.windows
            .observe(now, "fleet.queue_depth", &plabel, queue_after as f64);
        self.windows.add(now, "fleet.dispatches", &plabel, 1);
        let entropy = self.level_entropy[g][level];
        for _ in 0..size {
            self.windows
                .observe(finish, "serve.entropy", &label, entropy);
            self.windows
                .observe(finish, "fleet.entropy", &plabel, entropy);
        }
        for c in completions {
            self.windows
                .observe(c.done, "serve.latency_s", &label, c.latency_s);
            self.windows.add(c.done, "serve.deadline_total", &label, 1);
            self.windows
                .observe(c.done, "fleet.latency_s", &plabel, c.latency_s);
            self.windows.add(c.done, "fleet.deadline_total", &plabel, 1);
            if c.hit {
                self.windows.add(c.done, "serve.deadline_hits", &label, 1);
                self.windows.add(c.done, "fleet.deadline_hits", &plabel, 1);
            }
            telemetry::obs_instant("request.complete", self.wl_track[w], c.done * 1e6, || {
                vec![
                    ("req", Value::U64(c.req as u64)),
                    ("latency_s", Value::F64(c.latency_s)),
                    ("hit", Value::Bool(c.hit)),
                ]
            });
        }
    }

    /// Finalizes every window strictly below the one containing `now`:
    /// snapshots it into the flight recorder, then evaluates every
    /// workload's and platform's SLO over it. Safe to call on every
    /// event: the simulator's clock is monotonic, so all future records
    /// land in the window containing `now` or later.
    pub(crate) fn advance(&mut self, now: f64) {
        let upto = self.windows.index_of(now);
        while self.next_window < upto {
            let idx = self.next_window;
            self.next_window += 1;
            self.close_window(idx);
        }
    }

    /// Flushes every remaining window (through the last one holding data)
    /// and merges the windowed series into the global telemetry sink.
    pub(crate) fn finish(&mut self) {
        let last = self.windows.last_index().unwrap_or(0);
        while self.next_window <= last {
            let idx = self.next_window;
            self.next_window += 1;
            self.close_window(idx);
        }
        telemetry::merge_windowed(&self.windows);
    }

    /// Snapshot first, evaluate second: an alert fired from this window
    /// freezes a flight recorder that already contains the alerting
    /// window's state.
    fn close_window(&mut self, idx: u64) {
        self.snapshot_window(idx);
        for w in 0..self.slo.len() {
            self.evaluate_window(w, idx);
        }
        for g in 0..self.platform_slo.len() {
            self.evaluate_platform_window(g, idx);
        }
    }

    /// Renders closed window `idx` (every counter and histogram cell that
    /// landed in it) into the flight recorder's window ring.
    fn snapshot_window(&mut self, idx: u64) {
        let (start_s, end_s) = self.windows.bounds(idx);
        let records = self.windows.records_in(idx);
        if records.is_empty() {
            return;
        }
        let mut out = String::with_capacity(512);
        out.push_str("{\"window\":");
        json::write_number(&mut out, idx as f64);
        out.push_str(",\"start_s\":");
        json::write_number(&mut out, start_s);
        out.push_str(",\"end_s\":");
        json::write_number(&mut out, end_s);
        out.push_str(",\"records\":[");
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_escaped(&mut out, r.name);
            out.push_str(",\"label\":");
            json::write_escaped(&mut out, r.label);
            match &r.value {
                WindowValue::Count(n) => {
                    out.push_str(",\"count\":");
                    json::write_number(&mut out, *n as f64);
                }
                WindowValue::Hist(h) => {
                    out.push_str(",\"n\":");
                    json::write_number(&mut out, h.count as f64);
                    out.push_str(",\"mean\":");
                    json::write_number(&mut out, h.mean());
                    out.push_str(",\"p99\":");
                    json::write_number(&mut out, h.quantile(0.99));
                    out.push_str(",\"max\":");
                    json::write_number(&mut out, h.max);
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        self.flight.windows.push(out);
    }

    /// Evaluates workload `w`'s SLO over closed window `idx`, emitting one
    /// `slo.alert` instant per violated objective.
    fn evaluate_window(&mut self, w: usize, idx: u64) {
        let policy = self.slo[w].clone();
        let label = self.labels[w].clone();
        let (start_s, _end_s) = self.windows.bounds(idx);
        let violations = self.check_policy(&policy, idx, "serve", &label);
        for (metric, observed, objective, burn) in violations {
            self.windows.add(start_s, "serve.slo_alerts", &label, 1);
            telemetry::obs_instant("slo.alert", self.wl_track[w], start_s * 1e6, || {
                vec![
                    ("workload", Value::Str(label.clone())),
                    ("window", Value::U64(idx)),
                    ("metric", Value::Str(metric.to_string())),
                    ("observed", Value::F64(observed)),
                    ("objective", Value::F64(objective)),
                    ("burn_rate", Value::F64(burn)),
                ]
            });
            self.fire_incident(
                "workload",
                &label.clone(),
                idx,
                start_s,
                metric,
                observed,
                objective,
                burn,
            );
        }
    }

    /// Evaluates platform `g`'s SLO (if one was configured) over closed
    /// window `idx`, emitting one `slo.platform_alert` instant — naming
    /// the platform — per violated objective.
    fn evaluate_platform_window(&mut self, g: usize, idx: u64) {
        let Some(policy) = self.platform_slo[g].clone() else {
            return;
        };
        let name = self.platform_names[g].clone();
        let plabel = platform_label(&name);
        let (start_s, _end_s) = self.windows.bounds(idx);
        let violations = self.check_policy(&policy, idx, "fleet", &plabel);
        for (metric, observed, objective, burn) in violations {
            self.windows.add(start_s, "fleet.slo_alerts", &plabel, 1);
            telemetry::obs_instant(
                "slo.platform_alert",
                self.gpu_track[g],
                start_s * 1e6,
                || {
                    vec![
                        ("platform", Value::Str(name.clone())),
                        ("window", Value::U64(idx)),
                        ("metric", Value::Str(metric.to_string())),
                        ("observed", Value::F64(observed)),
                        ("objective", Value::F64(objective)),
                        ("burn_rate", Value::F64(burn)),
                    ]
                },
            );
            self.fire_incident(
                "platform", &name, idx, start_s, metric, observed, objective, burn,
            );
        }
    }

    /// Checks one policy against window `idx` of the `{prefix}.*` series
    /// under `label`, returning `(metric, observed, objective, burn)` per
    /// violated objective.
    fn check_policy(
        &self,
        policy: &SloPolicy,
        idx: u64,
        prefix: &str,
        label: &str,
    ) -> Vec<(&'static str, f64, f64, f64)> {
        let mut violations = Vec::new();
        if let Some(min_hit) = policy.min_hit_rate {
            let total = self
                .windows
                .counter_in(idx, &format!("{prefix}.deadline_total"), label);
            if total > 0 {
                let hits = self
                    .windows
                    .counter_in(idx, &format!("{prefix}.deadline_hits"), label);
                let hit_rate = hits as f64 / total as f64;
                let budget = (1.0 - min_hit).max(1e-9);
                let burn = (1.0 - hit_rate) / budget;
                if burn > 1.0 {
                    violations.push(("deadline_hit_rate", hit_rate, min_hit, burn));
                }
            }
        }
        if let Some(max_p99) = policy.max_p99_s {
            if let Some(h) = self
                .windows
                .histogram_in(idx, &format!("{prefix}.latency_s"), label)
            {
                let p99 = h.quantile(0.99);
                if p99 > max_p99 {
                    violations.push(("p99_latency_s", p99, max_p99, p99 / max_p99));
                }
            }
        }
        if let Some(max_entropy) = policy.max_entropy {
            if let Some(h) = self
                .windows
                .histogram_in(idx, &format!("{prefix}.entropy"), label)
            {
                let mean = h.mean();
                if mean > max_entropy {
                    violations.push(("entropy", mean, max_entropy, mean / max_entropy));
                }
            }
        }
        violations
    }

    /// Freezes the flight recorder into a self-contained JSON incident
    /// snapshot the moment the run's *first* SLO alert fires (later
    /// alerts are still traced, but the snapshot captures the onset).
    /// Registered via [`pcnn_telemetry::record_incident`]; the trace
    /// session writes it next to the trace as `<trace>.incident.json`.
    #[allow(clippy::too_many_arguments)]
    fn fire_incident(
        &mut self,
        scope: &str,
        subject: &str,
        window: u64,
        t_s: f64,
        metric: &str,
        observed: f64,
        objective: f64,
        burn: f64,
    ) {
        if self.incident_fired {
            return;
        }
        self.incident_fired = true;
        let mut out = String::with_capacity(4096);
        out.push_str("{\"kind\":\"incident\",\"router\":");
        json::write_escaped(&mut out, &self.router);
        out.push_str(",\"window_s\":");
        json::write_number(&mut out, self.window_s);
        out.push_str(",\"alert\":{\"t_s\":");
        json::write_number(&mut out, t_s);
        out.push_str(",\"scope\":");
        json::write_escaped(&mut out, scope);
        out.push_str(",\"subject\":");
        json::write_escaped(&mut out, subject);
        out.push_str(",\"window\":");
        json::write_number(&mut out, window as f64);
        out.push_str(",\"metric\":");
        json::write_escaped(&mut out, metric);
        out.push_str(",\"observed\":");
        json::write_number(&mut out, observed);
        out.push_str(",\"objective\":");
        json::write_number(&mut out, objective);
        out.push_str(",\"burn_rate\":");
        json::write_number(&mut out, burn);
        out.push_str("},\"platforms\":[");
        for (i, p) in self.platform_names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(&mut out, p);
        }
        out.push_str("],\"workloads\":[");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(&mut out, l);
        }
        out.push_str("],\"windows\":[");
        for (i, w) in self.flight.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(w);
        }
        out.push_str("],\"route_decisions\":[");
        for (i, d) in self.flight.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(d);
        }
        out.push_str("],\"ladder_moves\":[");
        for (i, m) in self.flight.ladder.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(m);
        }
        out.push_str("]}");
        telemetry::record_incident(out);
    }
}

/// The compact per-candidate encoding the `route.decision` instant
/// carries: `platform:batch:predicted_s:slack_s:joules_per_image:feasible`
/// per candidate, `;`-joined, `-` for a deadline-free slack. Kept flat so
/// the trace stays cheap; `pcnn obs route` re-expands it.
fn encode_candidates(platform_names: &[String], decision: &RouteDecision) -> String {
    let mut out = String::new();
    for (i, c) in decision.candidates.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        out.push_str(&platform_names[c.platform]);
        out.push(':');
        json::write_number(&mut out, c.batch as f64);
        out.push(':');
        json::write_number(&mut out, c.predicted_s);
        out.push(':');
        match c.slack_s {
            Some(s) => json::write_number(&mut out, s),
            None => out.push('-'),
        }
        out.push(':');
        json::write_number(&mut out, c.joules_per_image);
        out.push(':');
        out.push(if c.feasible { '1' } else { '0' });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policies_match_kinds() {
        let rt = SloPolicy::for_kind(WorkloadKind::RealTime, Some(0.05));
        assert_eq!(rt.min_hit_rate, Some(0.95));
        assert_eq!(rt.max_p99_s, Some(0.05));
        let bg = SloPolicy::for_kind(WorkloadKind::Background, None);
        assert_eq!(bg, SloPolicy::none());
    }

    #[test]
    fn policy_validation_rejects_bad_domains() {
        assert!(SloPolicy::none().validate().is_ok());
        let bad_rate = SloPolicy {
            min_hit_rate: Some(1.5),
            ..SloPolicy::none()
        };
        assert!(bad_rate.validate().is_err());
        let bad_p99 = SloPolicy {
            max_p99_s: Some(0.0),
            ..SloPolicy::none()
        };
        assert!(bad_p99.validate().is_err());
        let bad_entropy = SloPolicy {
            max_entropy: Some(f64::NAN),
            ..SloPolicy::none()
        };
        assert!(bad_entropy.validate().is_err());
    }

    #[test]
    fn candidate_encoding_is_compact_and_stable() {
        use crate::fleet::{CandidateScore, RouteDecision, RouteReason};
        let names = vec!["K20c".to_string(), "Jetson TX1".to_string()];
        let d = RouteDecision::place(0, RouteReason::DeadlineSlack).with_candidates(vec![
            CandidateScore {
                platform: 0,
                batch: 4,
                predicted_s: 0.5,
                slack_s: Some(0.25),
                joules_per_image: 2.0,
                feasible: true,
            },
            CandidateScore {
                platform: 1,
                batch: 4,
                predicted_s: 2.0,
                slack_s: None,
                joules_per_image: 0.5,
                feasible: true,
            },
        ]);
        assert_eq!(
            encode_candidates(&names, &d),
            "K20c:4:0.5:0.25:2:1;Jetson TX1:4:2:-:0.5:1"
        );
    }
}
