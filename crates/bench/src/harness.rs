//! Plain-text table rendering for the experiment binaries.

/// Accumulates rows and prints an aligned ASCII table.
///
/// # Example
///
/// ```
/// use pcnn_bench::TableWriter;
///
/// let mut t = TableWriter::new(vec!["net", "latency"]);
/// t.row(vec!["AlexNet".into(), "3.1".into()]);
/// let s = t.render();
/// assert!(s.contains("AlexNet"));
/// ```
#[derive(Debug, Clone)]
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Starts a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        println!("{}", self.render());
    }
}

/// Formats a float with 3 significant-ish decimals, or `"x"` for `None`
/// (the paper's out-of-memory marker).
pub fn cell(value: Option<f64>) -> String {
    match value {
        Some(v) if v >= 100.0 => format!("{v:.0}"),
        Some(v) if v >= 10.0 => format!("{v:.1}"),
        Some(v) => format!("{v:.2}"),
        None => "x".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableWriter::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a   "));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TableWriter::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(Some(1269.4)), "1269");
        assert_eq!(cell(Some(31.2)), "31.2");
        assert_eq!(cell(Some(3.1400001)), "3.14");
        assert_eq!(cell(None), "x");
    }
}
