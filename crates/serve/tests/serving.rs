//! End-to-end serving acceptance tests.
//!
//! All timing comes from the deterministic simulator, so every threshold
//! here is derived from measured costs, not hard-coded seconds: the tests
//! build a small network, measure its batch costs, and scale deadlines
//! and arrival rates off those.

use pcnn_core::prelude::*;
use pcnn_data::{RequestTrace, WorkloadKind};
use pcnn_gpu::arch::K20C;
use pcnn_nn::spec::{ConvSpec, FcSpec, LayerSpec, NetworkSpec};
use pcnn_serve::{fifo_baseline, DegradationLadder, Platform, ServeWorkload, Server, ServerConfig};

/// A two-conv network small enough to compile in milliseconds but big
/// enough that perforation changes its cost measurably.
fn tiny_net() -> NetworkSpec {
    NetworkSpec {
        name: "TinyServe".into(),
        input_elems: 16 * 32 * 32,
        layers: vec![
            LayerSpec::Conv(ConvSpec::new("CONV1", 64, 3, 16, 32, 32, 1, 1, 1)),
            LayerSpec::Conv(ConvSpec::new("CONV2", 128, 3, 64, 16, 16, 1, 1, 1)),
            LayerSpec::Fc(FcSpec {
                name: "FC".into(),
                in_features: 128 * 8 * 8,
                out_features: 10,
            }),
        ],
    }
}

const BATCH: usize = 8;

/// Unperforated cost of one batch-`BATCH` pass on the K20.
fn batch_cost(spec: &NetworkSpec) -> f64 {
    let schedule = OfflineCompiler::new(&K20C, spec)
        .try_compile_batch(BATCH)
        .unwrap();
    simulate_schedule(&K20C, &schedule).seconds
}

/// An interactive workload whose deadline is `slack_batches` batch times,
/// driven by Poisson arrivals at `load` times the batch-`BATCH` service
/// rate.
fn interactive_workload(
    spec: &NetworkSpec,
    load: f64,
    n_requests: usize,
    capacity: usize,
    seed: u64,
) -> (ServeWorkload, f64) {
    let c = batch_cost(spec);
    let throughput = BATCH as f64 / c;
    let t_user = 5.0 * c; // 5 batch times = 40 image service times
    let trace = RequestTrace::poisson(
        WorkloadKind::Interactive,
        n_requests,
        load * throughput,
        seed,
    );
    let app = AppSpec {
        name: "interactive load test".into(),
        kind: WorkloadKind::Interactive,
        data_rate: load * throughput,
        accuracy_sensitive: false,
    };
    let mut w = ServeWorkload::new(app, trace, capacity);
    // Rescale the HCI-constant deadlines to the simulated timescale.
    w.req.t_imperceptible = Some(t_user);
    w.req.t_unusable = Some(20.0 * t_user);
    (w, t_user)
}

fn config() -> ServerConfig {
    ServerConfig {
        max_batch: BATCH,
        ..ServerConfig::default()
    }
}

#[test]
fn overload_degradation_beats_fixed_batch_fifo() {
    let spec = tiny_net();
    let ladder = DegradationLadder::default_ladder(spec.conv_layers().len());
    let (workload, _) = interactive_workload(&spec, 1.5, 600, 512, 42);

    let server = Server::builder(&spec)
        .platform(Platform::new(&K20C, ladder.clone()))
        .config(config())
        .workload(workload.clone())
        .build()
        .unwrap();
    let report = server.run().unwrap();
    let served = &report.workloads[0];

    let fifo = fifo_baseline(&K20C, &spec, &workload, BATCH, ladder.levels[0].entropy).unwrap();

    // Under 1.5x overload the ladder must actually be walked…
    assert!(served.degrade_up > 0, "no degradation under overload");
    // …and the adaptive server must meet strictly more deadlines…
    assert!(
        served.deadlines_met > fifo.deadlines_met,
        "serve met {} vs fifo {}",
        served.deadlines_met,
        fifo.deadlines_met
    );
    // …and score a strictly higher SoC than the fixed-batch replay.
    let serve_soc = served.soc.as_ref().expect("served images").score;
    assert!(
        serve_soc > fifo.soc.score,
        "serve SoC {} vs fifo {}",
        serve_soc,
        fifo.soc.score
    );
}

#[test]
fn algo_rung_is_walked_before_perforation() {
    let spec = tiny_net();
    let n = spec.conv_layers().len();
    let c = batch_cost(&spec);
    let throughput = BATCH as f64 / c;
    let load = 1.35;
    let t_user = 8.0 * c;
    let trace = RequestTrace::poisson(WorkloadKind::Interactive, 400, load * throughput, 7);
    let app = AppSpec {
        name: "algo rung load test".into(),
        kind: WorkloadKind::Interactive,
        data_rate: load * throughput,
        accuracy_sensitive: false,
    };
    let mut workload = ServeWorkload::new(app, trace, 256);
    workload.req.t_imperceptible = Some(t_user);
    workload.req.t_unusable = Some(20.0 * t_user);
    let cfg = ServerConfig {
        max_batch: BATCH,
        queue_high_watermark: 0.3,
        ..ServerConfig::default()
    };

    let base = DegradationLadder::default_ladder(n);
    // A tuned conv plan (Winograd/direct kernels) measured ~30 % faster:
    // the ladder's first escalation becomes an algorithm downgrade, not
    // perforation.
    let with_rung = base.clone().with_algo_rung(0.70, 0.02);
    assert_eq!(with_rung.levels[1].rates, vec![0.0; n]);

    let s1 = Server::builder(&spec)
        .platform(Platform::new(&K20C, base))
        .config(cfg.clone())
        .workload(workload.clone())
        .build()
        .unwrap();
    let without = s1.run().unwrap();

    let s2 = Server::builder(&spec)
        .platform(Platform::new(&K20C, with_rung))
        .config(cfg)
        .workload(workload)
        .build()
        .unwrap();
    let with = s2.run().unwrap();

    let (a, b) = (&without.workloads[0], &with.workloads[0]);
    // The perforation-only ladder is forced into dropped work…
    assert!(a.degrade_up > 0, "perforation ladder never walked");
    assert!(
        a.final_level >= 2,
        "expected perforation, got {}",
        a.final_level
    );
    // …while the algo-rung ladder escalates exactly once and parks at the
    // rung: the overload is absorbed by faster kernels, never by
    // perforation.
    assert!(b.degrade_up > 0, "algo-rung ladder never walked");
    assert_eq!(b.final_level, 1, "walked past the algo rung");
    // Free speed beats dropped work on both axes: more deadlines met at
    // strictly lower mean entropy.
    assert!(
        b.deadlines_met > a.deadlines_met,
        "algo rung met {} deadlines vs {} without",
        b.deadlines_met,
        a.deadlines_met
    );
    assert!(
        b.mean_entropy < a.mean_entropy,
        "algo rung entropy {} vs {} without",
        b.mean_entropy,
        a.mean_entropy
    );
}

#[test]
fn below_capacity_nothing_is_dropped_and_deadlines_hold() {
    let spec = tiny_net();
    let ladder = DegradationLadder::default_ladder(spec.conv_layers().len());
    let (workload, _) = interactive_workload(&spec, 0.4, 200, 256, 7);

    let server = Server::builder(&spec)
        .platform(Platform::new(&K20C, ladder))
        .config(config())
        .workload(workload)
        .build()
        .unwrap();
    let report = server.run().unwrap();
    let w = &report.workloads[0];

    assert_eq!(report.total_rejected(), 0, "drops below capacity");
    assert_eq!(w.rejected_requests, 0);
    assert_eq!(w.served_images, w.images);
    assert_eq!(
        w.deadlines_met, w.deadline_total,
        "missed deadlines below capacity: {}/{}",
        w.deadlines_met, w.deadline_total
    );
    assert_eq!(w.deadline_total, 200);
}

#[test]
fn same_seed_is_byte_identical() {
    let spec = tiny_net();
    let run = || {
        let ladder = DegradationLadder::default_ladder(spec.conv_layers().len());
        let (workload, _) = interactive_workload(&spec, 1.2, 150, 128, 3);
        let server = Server::builder(&spec)
            .platform(Platform::new(&K20C, ladder))
            .config(config())
            .workload(workload)
            .build()
            .unwrap();
        server.run().unwrap().to_json()
    };
    assert_eq!(run(), run());
}

#[test]
fn realtime_outranks_background_and_both_finish() {
    let spec = tiny_net();
    let ladder = DegradationLadder::default_ladder(spec.conv_layers().len());
    let c = batch_cost(&spec);
    // 30 frames whose period is 4 batch times; deadline = period.
    let period = 4.0 * c;
    let fps = 1.0 / period;
    let mut rt = ServeWorkload::new(
        AppSpec::video_surveillance(fps),
        RequestTrace::real_time(30, fps),
        64,
    );
    rt.req.t_imperceptible = Some(period);
    rt.req.t_unusable = Some(period);
    let bg = ServeWorkload::new(AppSpec::image_tagging(), RequestTrace::background(64), 128);

    let server = Server::builder(&spec)
        .platform(Platform::new(&K20C, ladder))
        .config(config())
        .workload(rt)
        .workload(bg)
        .build()
        .unwrap();
    let report = server.run().unwrap();

    let rt_report = &report.workloads[0];
    assert_eq!(rt_report.kind, WorkloadKind::RealTime);
    assert_eq!(
        rt_report.deadlines_met, rt_report.deadline_total,
        "real-time frames missed next to background work"
    );
    assert_eq!(rt_report.served_images, 30);

    let bg_report = &report.workloads[1];
    assert_eq!(bg_report.kind, WorkloadKind::Background);
    assert_eq!(bg_report.served_images, 64);
    assert_eq!(bg_report.rejected_images, 0);
    assert!(bg_report.soc.as_ref().expect("served").score > 0.0);
    assert_eq!(report.gpus[0].dispatches, rt_dispatches(&report));
}

fn rt_dispatches(report: &pcnn_serve::ServeReport) -> usize {
    // Sanity helper: total dispatches recorded on the single GPU.
    report.gpus[0].dispatches
}

#[test]
fn infeasible_deadline_is_refused_up_front() {
    let spec = tiny_net();
    let ladder = DegradationLadder::default_ladder(spec.conv_layers().len());
    let c = batch_cost(&spec);
    // A frame deadline of 1/1000th of a batch time is unmeetable even at
    // the deepest ladder level and batch 1.
    let fps = 1000.0 * BATCH as f64 / c;
    let rt = ServeWorkload::new(
        AppSpec::video_surveillance(fps),
        RequestTrace::real_time(4, fps),
        16,
    );
    let server = Server::builder(&spec)
        .platform(Platform::new(&K20C, ladder))
        .config(config())
        .workload(rt)
        .build()
        .unwrap();
    match server.run() {
        Err(Error::InfeasibleSchedule { t_user, predicted }) => {
            assert!(predicted > t_user);
        }
        other => panic!("expected InfeasibleSchedule, got {other:?}"),
    }
}

#[test]
fn builder_rejects_bad_inputs() {
    let spec = tiny_net();
    let n_convs = spec.conv_layers().len();
    let ladder = DegradationLadder::default_ladder(n_convs);

    // No platform at all.
    assert!(matches!(
        Server::builder(&spec).config(config()).build(),
        Err(Error::InvalidInput {
            what: "server needs at least one GPU"
        })
    ));
    // A platform whose ladder has no levels.
    assert!(matches!(
        Server::builder(&spec)
            .platform(Platform::new(&K20C, DegradationLadder { levels: vec![] }))
            .config(config())
            .build(),
        Err(Error::InvalidInput {
            what: "degradation ladder needs at least one level"
        })
    ));
    // A ladder whose rate vectors don't match the network — even when
    // only the *second* platform carries it.
    assert!(matches!(
        Server::builder(&spec)
            .platform(Platform::new(&K20C, ladder.clone()))
            .platform(Platform::new(
                &K20C,
                DegradationLadder::default_ladder(n_convs + 1)
            ))
            .config(config())
            .build(),
        Err(Error::RateLenMismatch { .. })
    ));
    // Config knobs are validated through ServerConfig::validate.
    assert!(matches!(
        Server::builder(&spec)
            .platform(Platform::new(&K20C, ladder.clone()))
            .config(config().with_max_batch(0))
            .build(),
        Err(Error::InvalidInput {
            what: "max_batch must be at least 1"
        })
    ));
    assert!(matches!(
        Server::builder(&spec)
            .platform(Platform::new(&K20C, ladder.clone()))
            .config(config().with_slack_margin(2.0))
            .build(),
        Err(Error::InvalidInput {
            what: "slack_margin must be in [0, 1)"
        })
    ));

    // A server with no workloads is an error, not an empty report.
    let server = Server::builder(&spec)
        .platform(Platform::new(&K20C, ladder))
        .config(config())
        .build()
        .unwrap();
    assert!(matches!(server.run(), Err(Error::InvalidInput { .. })));
}

#[test]
#[allow(deprecated)]
fn deprecated_constructor_still_builds_homogeneous_fleet() {
    let spec = tiny_net();
    let ladder = DegradationLadder::default_ladder(spec.conv_layers().len());

    // The shim validates like the builder…
    assert!(matches!(
        Server::new(vec![], &spec, ladder.clone(), config()),
        Err(Error::InvalidInput {
            what: "server needs at least one GPU"
        })
    ));
    // …and still serves, giving every GPU a copy of the one ladder.
    let (workload, _) = interactive_workload(&spec, 0.5, 20, 64, 5);
    let mut old = Server::new(vec![&K20C, &K20C], &spec, ladder.clone(), config()).unwrap();
    old.add_workload(workload.clone());
    assert_eq!(old.platforms().len(), 2);
    let via_builder = Server::builder(&spec)
        .platform(Platform::new(&K20C, ladder.clone()))
        .platform(Platform::new(&K20C, ladder))
        .config(config())
        .workload(workload)
        .build()
        .unwrap();
    assert_eq!(
        old.run().unwrap().to_json(),
        via_builder.run().unwrap().to_json()
    );
}

#[test]
fn observability_config_errors_are_typed() {
    let spec = tiny_net();
    let ladder = DegradationLadder::default_ladder(spec.conv_layers().len());

    // A non-positive observability window is rejected at construction,
    // even though it is only ever read when telemetry is enabled.
    let bad_window = ServerConfig {
        obs_window_s: 0.0,
        ..config()
    };
    assert!(matches!(
        Server::builder(&spec)
            .platform(Platform::new(&K20C, ladder.clone()))
            .config(bad_window)
            .build(),
        Err(Error::InvalidInput {
            what: "obs_window_s must be positive and finite"
        })
    ));

    // An out-of-domain SLO policy is a typed error from `run()`, not a
    // silent misconfiguration of the monitor.
    let (workload, _) = interactive_workload(&spec, 0.5, 10, 64, 1);
    let bad_slo = pcnn_serve::SloPolicy {
        min_hit_rate: Some(1.5),
        ..pcnn_serve::SloPolicy::none()
    };
    let server = Server::builder(&spec)
        .platform(Platform::new(&K20C, ladder))
        .config(config())
        .workload(workload.with_slo(bad_slo))
        .build()
        .unwrap();
    assert!(matches!(
        server.run(),
        Err(Error::InvalidInput {
            what: "slo min_hit_rate must be within [0, 1]"
        })
    ));
}

#[test]
fn two_gpus_serve_faster_than_one() {
    let spec = tiny_net();
    let ladder = DegradationLadder::none(spec.conv_layers().len(), 0.9);
    let no_degrade = ServerConfig {
        max_batch: BATCH,
        degradation: false,
        ..ServerConfig::default()
    };
    let run = |n_gpus: usize| {
        let bg = ServeWorkload::new(AppSpec::image_tagging(), RequestTrace::background(128), 256);
        let mut b = Server::builder(&spec)
            .config(no_degrade.clone())
            .workload(bg);
        for _ in 0..n_gpus {
            b = b.platform(Platform::new(&K20C, ladder.clone()));
        }
        b.build().unwrap().run().unwrap()
    };
    let one = run(1);
    let two = run(2);
    assert!(
        two.makespan_s < one.makespan_s,
        "two GPUs {} vs one {}",
        two.makespan_s,
        one.makespan_s
    );
    assert!(two.gpus.iter().all(|g| g.dispatches > 0));
}
