//! End-to-end tests of the `pcnn obs` subcommand: the analyzer over a
//! real exported trace, binary-level trace determinism, and the
//! tolerance-band regression gate.

use std::path::{Path, PathBuf};
use std::process::Command;

fn pcnn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pcnn"))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pcnn-obs-{}-{name}", std::process::id()))
}

#[test]
fn obs_check_passes_clean_and_fails_injected_regression() {
    let root = repo_root();
    let serve_baseline = root.join("BENCH_serve.json");
    let gemm_baseline = root.join("BENCH_gemm.json");

    // Baseline vs itself is clean for both documents.
    let out = pcnn()
        .args(["obs", "check"])
        .arg(format!("--baseline-serve={}", serve_baseline.display()))
        .arg(format!("--baseline-gemm={}", gemm_baseline.display()))
        .arg(format!("--candidate-serve={}", serve_baseline.display()))
        .arg(format!("--candidate-gemm={}", gemm_baseline.display()))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "clean check failed: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // A doctored candidate (dropped deadline hits) must gate.
    let baseline = std::fs::read_to_string(&serve_baseline).unwrap();
    let doctored = baseline.replace("\"deadlines_met\": 140", "\"deadlines_met\": 100");
    assert_ne!(baseline, doctored, "baseline fixture changed shape");
    let bad = tmp("doctored-serve.json");
    std::fs::write(&bad, doctored).unwrap();
    let out = pcnn()
        .args(["obs", "check"])
        .arg(format!("--baseline-serve={}", serve_baseline.display()))
        .arg(format!("--candidate-serve={}", bad.display()))
        .output()
        .unwrap();
    std::fs::remove_file(&bad).ok();
    assert!(!out.status.success(), "regressed candidate passed the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("REGRESSION") && stdout.contains("deadline_hit_rate"),
        "unexpected gate output: {stdout}"
    );
}

#[test]
fn traced_serve_runs_are_byte_identical_and_analyzable() {
    let run = |trace: &Path| {
        let out = pcnn()
            .args(["serve", "--smoke"])
            .env("PCNN_TRACE", trace)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "serve failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    let trace_a = tmp("trace-a.json");
    let trace_b = tmp("trace-b.json");
    run(&trace_a);
    run(&trace_b);
    let a = std::fs::read(&trace_a).unwrap();
    let b = std::fs::read(&trace_b).unwrap();
    assert_eq!(a, b, "seeded smoke traces differ at the binary level");

    let out = pcnn().arg("obs").arg(&trace_a).output().unwrap();
    for p in [&trace_a, &trace_b] {
        std::fs::remove_file(p).ok();
        std::fs::remove_file(format!("{}.manifest.jsonl", p.display())).ok();
        std::fs::remove_file(format!("{}.prom", p.display())).ok();
    }
    assert!(
        out.status.success(),
        "analyzer failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("queueing vs service per workload"));
    assert!(stdout.contains("age detection"));
    assert!(stdout.contains("critical path"));
}

#[test]
fn analyzer_rejects_non_trace_input() {
    let path = tmp("not-a-trace.json");
    std::fs::write(&path, "{\"not\": \"a trace\"}").unwrap();
    let out = pcnn().arg("obs").arg(&path).output().unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
}
