//! Coordinated fine-tuning of sub-matrix size and registers per thread
//! (paper §IV.B.2, Fig. 9, eq. 10).

use pcnn_gpu::occupancy::Occupancy;
use pcnn_gpu::GpuArch;

use crate::sgemm::{
    effective_computation, grid_size, n_invocations, SgemmConfig, SgemmShape, SgemmVariant,
    ALL_TILES,
};
use crate::spill::SpillPlan;

/// One pruned design point on the TLP staircase of Fig. 9: within a stair
/// (fixed TLP) the rightmost point — the one using the most registers —
/// dominates, so only those are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StairPoint {
    /// Registers per thread at this point.
    pub regs: usize,
    /// Resident CTAs per SM this register count permits.
    pub tlp: usize,
}

/// Minimum useful registers per thread: the register file divided by the
/// maximum thread count (below this, registers are no longer the occupancy
/// limiter — §IV.B.2's `minReg`).
pub fn min_regs(arch: &GpuArch) -> usize {
    (arch.regs_per_sm / arch.max_threads_per_sm).max(16)
}

/// The pruned TLP staircase for a tile variant: for every achievable TLP,
/// the maximum register count that still achieves it (Fig. 9's red
/// points), from `curReg` down to `minReg`.
///
/// Like the paper's eq. 5 and Fig. 9, the staircase considers the
/// *register* limit (with thread/CTA-slot caps); shared memory is handled
/// separately by the tuner, which clamps each point to the full occupancy.
pub fn tlp_stairs(arch: &GpuArch, variant: &SgemmVariant) -> Vec<StairPoint> {
    let lo = min_regs(arch);
    let hi = variant.natural_regs;
    let mut stairs: Vec<StairPoint> = Vec::new();
    for regs in (lo..=hi).rev() {
        let mut res = SgemmConfig::natural(*variant).resources();
        res.regs_per_thread = regs;
        res.shmem_per_block = 0; // register-driven staircase (eq. 5)
        let occ = Occupancy::of(arch, &res);
        let tlp = occ.by_registers.min(occ.by_threads).min(occ.by_cta_slots);
        if tlp == 0 {
            continue;
        }
        match stairs.last() {
            Some(last) if last.tlp >= tlp => {}
            _ => stairs.push(StairPoint { regs, tlp }),
        }
    }
    stairs
}

/// Paper eq. 10, literally: `S_kernel = (1 - rEC) x Spill_cost x
/// nInvocations`. The formula is degenerate at its boundaries (any
/// unspilled or exactly-fitting kernel scores 0); it is exposed for
/// completeness and the ablation benches.
pub fn s_kernel_literal(rec: f64, spill_cost: f64, invocations: usize) -> f64 {
    (1.0 - rec) * spill_cost * invocations as f64
}

/// The effective selection score (smaller is better): an analytic estimate
/// of the kernel's execution cycles combining the three penalties of
/// eq. 10 in non-degenerate form —
///
/// * `nInvocations` waves of work (eq. 8),
/// * compute per wave inflated by padding waste `1/rEC` (eq. 9),
/// * spill overhead per wave (eq. 7), amortised by TLP latency hiding.
pub fn s_kernel_effective(
    arch: &GpuArch,
    shape: SgemmShape,
    config: &SgemmConfig,
    tlp: usize,
) -> f64 {
    let v = &config.variant;
    let grid = grid_size(shape, v);
    let rec = effective_computation(shape, v);
    let invocations = n_invocations(grid, tlp, arch.n_sms);
    let k_iters = shape.k.div_ceil(v.k_step).max(1) as f64;
    // Compute-bound cycles of one wave: FFMA thread-ops / SM FFMA lanes.
    let tile_macs = (v.tile_m * v.tile_n) as f64 * shape.k as f64;
    let compute = tlp as f64 * tile_macs / arch.cores_per_sm as f64;
    // Memory-bound cycles of one wave: each CTA streams (m + n) x K tile
    // elements from DRAM, against this SM's bandwidth share. Small tiles
    // trade compute density for occupancy (Fig. 6), which this term
    // captures.
    let tile_bytes = ((v.tile_m + v.tile_n) * 4) as f64 * shape.k as f64;
    let bytes_per_cycle_per_sm = arch.bytes_per_cycle() / arch.n_sms as f64;
    let memory = tlp as f64 * tile_bytes / bytes_per_cycle_per_sm;
    // Spill overhead per wave, partially hidden by TLP.
    let spill = k_iters * config.spill.cost(arch) / tlp as f64;
    invocations as f64 * (compute.max(memory) + spill) / rec
}

/// Result of coordinated fine-tuning for one GEMM shape.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedKernel {
    /// Selected tile + register configuration.
    pub config: SgemmConfig,
    /// Selected TLP (`optTLP`).
    pub opt_tlp: usize,
    /// Grid size of the selected kernel.
    pub grid: usize,
    /// Effective-computation ratio (eq. 9).
    pub rec: f64,
    /// Invocation waves at `opt_tlp` (eq. 8).
    pub invocations: usize,
    /// The effective selection score that won.
    pub score: f64,
}

/// Coordinately fine-tunes the tile variant and register count for an SGEMM
/// of `shape` on `arch` (paper §IV.B.2): enumerate the pruned TLP-stair
/// points of every common tile, score each with [`s_kernel_effective`], and
/// return the smallest.
///
/// # Panics
///
/// Panics if `shape` has a zero dimension.
pub fn tune_kernel(arch: &GpuArch, shape: SgemmShape) -> TunedKernel {
    tune_kernel_candidates(arch, shape, 1)
        .into_iter()
        .next()
        .expect("at least one tile variant always yields a candidate")
}

/// Like [`tune_kernel`] but returns the `top_k` best-scored candidates
/// (ascending score). The offline compiler profiles these on the simulator
/// and keeps the fastest — the analytic score prunes the design space, the
/// measurement decides (§IV.B.2's "explore the performance of the
/// candidate points").
///
/// # Panics
///
/// Panics if `shape` has a zero dimension or `top_k == 0`.
pub fn tune_kernel_candidates(arch: &GpuArch, shape: SgemmShape, top_k: usize) -> Vec<TunedKernel> {
    assert!(
        shape.m > 0 && shape.n > 0 && shape.k > 0,
        "degenerate GEMM shape {shape:?}"
    );
    assert!(top_k > 0, "top_k must be positive");
    let _span = pcnn_telemetry::span!(
        "tuner.tune_kernel",
        m = shape.m,
        n = shape.n,
        k = shape.k,
        top_k = top_k
    );
    let mut skipped: u64 = 0;
    let mut candidates: Vec<TunedKernel> = Vec::new();
    let mut seen_tlp = std::collections::HashSet::new();
    for variant in &ALL_TILES {
        seen_tlp.clear();
        // The natural-config occupancy depends only on the tile variant,
        // not the staircase point — compute it once per variant instead of
        // once per (variant, point).
        let natural_occ =
            Occupancy::of(arch, &SgemmConfig::natural(*variant).resources()).ctas_per_sm();
        for point in tlp_stairs(arch, variant) {
            // Clamp the register-driven staircase to the full occupancy
            // (shared memory included) and dedupe by effective TLP.
            let tlp = point.tlp.min(natural_occ.max(1));
            if !seen_tlp.insert(tlp) {
                skipped += 1;
                continue;
            }
            let spill = SpillPlan::plan(arch, variant, point.regs, tlp);
            let config = SgemmConfig {
                variant: *variant,
                regs_per_thread: point.regs,
                spill,
            };
            // Spill-to-shared consumes shared memory; re-check that the
            // intended TLP still fits.
            let occ = Occupancy::of(arch, &config.resources()).ctas_per_sm();
            if occ < tlp {
                skipped += 1;
                continue;
            }
            let score = s_kernel_effective(arch, shape, &config, tlp);
            let grid = grid_size(shape, variant);
            let candidate = TunedKernel {
                config,
                opt_tlp: tlp,
                grid,
                rec: effective_computation(shape, variant),
                invocations: n_invocations(grid, tlp, arch.n_sms),
                score,
            };
            candidates.push(candidate);
        }
    }
    candidates.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"));
    let explored = candidates.len() as u64;
    candidates.truncate(top_k);
    if pcnn_telemetry::enabled() {
        let mut m = pcnn_telemetry::Metrics::default();
        m.add("tuner.candidates.explored", explored);
        m.add("tuner.candidates.kept", candidates.len() as u64);
        m.add(
            "tuner.candidates.pruned",
            skipped + explored - candidates.len() as u64,
        );
        pcnn_telemetry::merge_metrics(&m);
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgemm::{TILE_128X128, TILE_32X32};
    use pcnn_gpu::arch::{JETSON_TX1, K20C};

    #[test]
    fn stairs_are_monotone() {
        let stairs = tlp_stairs(&K20C, &TILE_128X128);
        assert!(!stairs.is_empty());
        // Regs decrease, TLP increases along the staircase.
        for w in stairs.windows(2) {
            assert!(w[1].regs < w[0].regs);
            assert!(w[1].tlp > w[0].tlp);
        }
        // The first point is the natural kernel.
        assert_eq!(stairs[0].regs, TILE_128X128.natural_regs);
    }

    #[test]
    fn fig9_stair_values_on_k20() {
        // Fig. 9: 128x128 tile, 256 threads on K20, curReg 127, minReg 32.
        assert_eq!(min_regs(&K20C), 32);
        let stairs = tlp_stairs(&K20C, &TILE_128X128);
        // Natural 127 regs -> 65536/(256*128-granule) = 2 CTAs.
        assert_eq!(stairs[0].tlp, 2);
        // Max TLP at 32 regs: 65536/(256*32) = 8.
        let last = stairs.last().unwrap();
        assert_eq!(last.tlp, 8);
    }

    #[test]
    fn literal_s_kernel_degenerates() {
        assert_eq!(s_kernel_literal(1.0, 100.0, 5), 0.0);
        assert_eq!(s_kernel_literal(0.5, 0.0, 5), 0.0);
        assert!(s_kernel_literal(0.5, 10.0, 5) > 0.0);
    }

    #[test]
    fn tuner_picks_small_tile_for_small_gemm() {
        // AlexNet CONV5 non-batched on TX1: M=128, N=169. A 128x128 tile
        // wastes most of the padded work; the tuner must pick something
        // smaller.
        let shape = SgemmShape {
            m: 128,
            n: 169,
            k: 1728,
        };
        let tuned = tune_kernel(&JETSON_TX1, shape);
        assert!(
            tuned.config.variant.tile_m * tuned.config.variant.tile_n
                < TILE_128X128.tile_m * TILE_128X128.tile_n,
            "picked {:?}",
            tuned.config.variant
        );
        assert!(tuned.rec > 0.5);
    }

    #[test]
    fn tuner_picks_large_tile_for_large_gemm() {
        // A big batched GEMM: padding is negligible, compute density wins.
        let shape = SgemmShape {
            m: 256,
            n: 93184,
            k: 1200,
        };
        let tuned = tune_kernel(&K20C, shape);
        assert!(
            tuned.config.variant.tile_n >= 64,
            "picked {:?}",
            tuned.config.variant
        );
    }

    #[test]
    fn tuned_tlp_within_occupancy() {
        let shape = SgemmShape {
            m: 128,
            n: 729,
            k: 1200,
        };
        let tuned = tune_kernel(&K20C, shape);
        let occ = Occupancy::of(&K20C, &tuned.config.resources()).ctas_per_sm();
        assert!(tuned.opt_tlp <= occ);
        assert!(tuned.opt_tlp >= 1);
    }

    #[test]
    fn stairs_exist_for_small_tile_on_tx1() {
        let stairs = tlp_stairs(&JETSON_TX1, &TILE_32X32);
        assert!(!stairs.is_empty());
        // The 32x32 kernel's occupancy on TX1 is capped by CTA slots (16),
        // so the staircase collapses early.
        assert!(stairs.iter().all(|p| p.tlp <= 16));
    }

    #[test]
    fn effective_score_penalizes_spilling_to_global() {
        let shape = SgemmShape {
            m: 128,
            n: 4096,
            k: 1200,
        };
        let natural = SgemmConfig::natural(TILE_128X128);
        let heavy_spill = SgemmConfig {
            variant: TILE_128X128,
            regs_per_thread: 32,
            spill: SpillPlan {
                to_shared: 0,
                to_global: 95,
            },
        };
        let a = s_kernel_effective(&K20C, shape, &natural, 2);
        let b = s_kernel_effective(&K20C, shape, &heavy_spill, 8);
        assert!(b > a, "global spilling not penalised: {a} vs {b}");
    }
}
