//! End-to-end pipeline integration: requirement inference -> offline
//! compilation -> simulated execution -> SoC scoring, across crates.

use pcnn_core::prelude::*;
use pcnn_data::RequestTrace;
use pcnn_gpu::arch::{all_platforms, JETSON_TX1, K20C};
use pcnn_nn::spec::{alexnet, googlenet, vggnet};

#[test]
fn offline_compilation_meets_interactive_budget_everywhere() {
    let app = AppSpec::age_detection();
    let req = UserRequirements::infer(&app);
    let spec = alexnet();
    for arch in all_platforms() {
        let schedule = OfflineCompiler::new(arch, &spec)
            .try_compile(&app, &req)
            .unwrap();
        let cost = simulate_schedule(arch, &schedule);
        // 100 ms imperceptible budget holds on every platform for AlexNet.
        assert!(
            cost.seconds < 0.1,
            "{}: {:.1} ms exceeds the interactive budget",
            arch.name,
            cost.seconds * 1e3
        );
    }
}

#[test]
fn bigger_gpus_run_inference_faster() {
    let spec = alexnet();
    let times: Vec<f64> = all_platforms()
        .iter()
        .map(|arch| {
            let s = OfflineCompiler::new(arch, &spec)
                .try_compile_batch(1)
                .unwrap();
            simulate_schedule(arch, &s).seconds
        })
        .collect();
    // Platform order: K20, TitanX, 970m, TX1. TitanX fastest, TX1 slowest.
    assert!(times[1] < times[3], "TitanX vs TX1: {times:?}");
    assert!(times[0] < times[3], "K20 vs TX1: {times:?}");
    assert!(times[2] < times[3], "970m vs TX1: {times:?}");
}

#[test]
fn batching_improves_throughput_on_every_platform() {
    let spec = alexnet();
    for arch in all_platforms() {
        let compiler = OfflineCompiler::new(arch, &spec);
        let t1 = simulate_schedule(arch, &compiler.try_compile_batch(1).unwrap()).seconds;
        let t32 = simulate_schedule(arch, &compiler.try_compile_batch(32).unwrap()).seconds;
        let tp1 = 1.0 / t1;
        let tp32 = 32.0 / t32;
        assert!(
            tp32 > 1.5 * tp1,
            "{}: batching throughput {tp32:.0} not >> {tp1:.0}",
            arch.name
        );
    }
}

#[test]
fn perforation_reduces_time_and_energy() {
    let spec = alexnet();
    let compiler = OfflineCompiler::new(&JETSON_TX1, &spec);
    let n = spec.conv_layers().len();
    let base = simulate_schedule(
        &JETSON_TX1,
        &compiler
            .try_compile_perforated(1, &vec![0.0; n], true)
            .unwrap(),
    );
    let perf = simulate_schedule(
        &JETSON_TX1,
        &compiler
            .try_compile_perforated(1, &vec![0.5; n], true)
            .unwrap(),
    );
    assert!(perf.seconds < base.seconds);
    assert!(perf.energy.total_j() < base.energy.total_j());
}

#[test]
fn trace_execution_scores_finite_soc() {
    let app = AppSpec::video_surveillance(30.0);
    let req = UserRequirements::infer(&app);
    let spec = alexnet();
    let compiler = OfflineCompiler::new(&K20C, &spec);
    let schedule = compiler.try_compile(&app, &req).unwrap();
    let trace = RequestTrace::real_time(5, 30.0);
    let report = execute_trace(&K20C, &trace, schedule.batch, &mut &compiler).unwrap();
    let s = score(
        &req,
        &SocInputs {
            response_time: report.max_latency(),
            entropy: 0.9,
            energy_j: report.energy.total_j(),
        },
    )
    .unwrap();
    assert!(s.score.is_finite());
    assert!(s.score > 0.0, "K20 must meet a 30 FPS deadline");
}

#[test]
fn compilation_works_for_all_three_networks() {
    for spec in [alexnet(), googlenet(), vggnet()] {
        let schedule = OfflineCompiler::new(&K20C, &spec)
            .try_compile_batch(1)
            .unwrap();
        assert!(!schedule.layers.is_empty(), "{}", spec.name);
        let cost = simulate_schedule(&K20C, &schedule);
        assert!(
            cost.seconds > 0.0 && cost.seconds < 1.0,
            "{}: {}",
            spec.name,
            cost.seconds
        );
    }
}
