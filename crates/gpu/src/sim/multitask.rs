//! Spatial multitasking: concurrent kernels on disjoint SM partitions.
//!
//! §III.D.2 of the paper discusses why MPS-style sharing cannot guarantee
//! run-time for time-sensitive CNNs and why spatial partitioning
//! (Adriaens et al. [22], Liang et al. [20]) needs per-layer `Util`
//! awareness. This module implements the mechanism P-CNN's released SMs
//! enable: each kernel receives an exclusive, contiguous set of SMs and
//! runs its CTAs only there, while DRAM bandwidth is shared by every
//! active partition.

use crate::arch::GpuArch;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::occupancy::Occupancy;
use crate::sim::dispatch::KernelResult;
use crate::sim::{KernelDesc, SimCache};

/// One tenant of a spatial-multitasking launch.
#[derive(Debug, Clone)]
pub struct Partition<'a> {
    /// The kernel to run.
    pub kernel: &'a KernelDesc,
    /// Number of SMs dedicated to it.
    pub sms: usize,
    /// Resident-CTA cap per SM (clamped to occupancy).
    pub tlp: usize,
}

/// Result of a concurrent launch: per-kernel results plus the combined
/// window energy.
#[derive(Debug, Clone)]
pub struct MultitaskResult {
    /// Per-partition kernel results, in input order. Each partition's
    /// leakage/constant energy covers only its own busy window; the
    /// combined accounting lives in `energy`.
    pub kernels: Vec<KernelResult>,
    /// End-to-end seconds (the slowest partition).
    pub seconds: f64,
    /// Whole-launch energy: dynamic energy of every kernel, leakage of
    /// every powered SM over the full window, gated residual for the
    /// rest, one constant-power term.
    pub energy: EnergyBreakdown,
}

/// Simulates `partitions` concurrently on disjoint SM sets.
///
/// DRAM bandwidth is shared: every kernel sees an `active_sms` equal to
/// the *total* powered SM count, so each SM's bandwidth share reflects all
/// co-runners (first-order contention, same model as single-kernel runs).
/// SMs not belonging to any partition are power-gated when `gate_unused`.
///
/// # Panics
///
/// Panics if no partitions are given, any partition is empty, or the SM
/// counts exceed the architecture.
pub fn simulate_concurrent(
    arch: &GpuArch,
    partitions: &[Partition<'_>],
    gate_unused: bool,
) -> MultitaskResult {
    assert!(!partitions.is_empty(), "need at least one partition");
    let total_sms: usize = partitions.iter().map(|p| p.sms).sum();
    assert!(
        total_sms <= arch.n_sms,
        "partitions need {total_sms} SMs, architecture has {}",
        arch.n_sms
    );
    for p in partitions {
        assert!(p.sms > 0, "empty partition for {}", p.kernel.name);
        assert!(p.kernel.grid > 0, "empty grid for {}", p.kernel.name);
    }

    let mut kernels = Vec::with_capacity(partitions.len());
    let mut seconds: f64 = 0.0;
    for p in partitions {
        // Run the partition exactly like a PSM launch restricted to its
        // SMs, but with the DRAM share of the full co-running set.
        let occ = Occupancy::of(arch, &p.kernel.resources)
            .ctas_per_sm()
            .max(1);
        let tlp = p.tlp.clamp(1, occ);
        let mut cache = SimCache::new();
        let result = simulate_partition(arch, p.kernel, p.sms, tlp, total_sms, &mut cache);
        seconds = seconds.max(result.seconds);
        kernels.push(result);
    }

    // Combined energy over the slowest partition's window.
    let mut dynamic = EnergyBreakdown::default();
    for k in &kernels {
        dynamic.dynamic_j += k.energy.dynamic_j;
        dynamic.dram_j += k.energy.dram_j;
    }
    let gated = if gate_unused {
        arch.n_sms - total_sms
    } else {
        0
    };
    let powered = arch.n_sms - gated;
    let window = EnergyModel.compute(
        arch,
        &crate::sim::trace::InstrCounts::default(),
        seconds,
        powered,
        gated,
    );
    let energy = EnergyBreakdown {
        dynamic_j: dynamic.dynamic_j,
        dram_j: dynamic.dram_j,
        leakage_j: window.leakage_j,
        constant_j: window.constant_j,
    };
    MultitaskResult {
        kernels,
        seconds,
        energy,
    }
}

/// PSM-style event loop over `sms` SMs with a fixed DRAM-sharing SM count.
fn simulate_partition(
    arch: &GpuArch,
    kernel: &KernelDesc,
    sms: usize,
    tlp: usize,
    bandwidth_sms: usize,
    cache: &mut SimCache,
) -> KernelResult {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut resident = vec![0usize; sms];
    let mut remaining = kernel.grid;
    for r in resident.iter_mut() {
        while *r < tlp && remaining > 0 {
            *r += 1;
            remaining -= 1;
        }
    }
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut touched = 0usize;
    for (sm, &r) in resident.iter().enumerate() {
        if r > 0 {
            touched += 1;
            let d = cache.wave_cycles(arch, kernel, r, bandwidth_sms);
            for _ in 0..r {
                heap.push(Reverse((d, sm)));
            }
        }
    }
    let mut end = 0u64;
    while let Some(Reverse((t, sm))) = heap.pop() {
        end = end.max(t);
        resident[sm] -= 1;
        if remaining > 0 {
            remaining -= 1;
            resident[sm] += 1;
            let d = cache.wave_cycles(arch, kernel, resident[sm], bandwidth_sms);
            heap.push(Reverse((t + d, sm)));
        }
    }
    let seconds = end as f64 / arch.freq_hz();
    let per_warp = kernel.trace.warp_instr_counts();
    let instr = per_warp.scaled((kernel.warps_per_cta() * kernel.grid) as u64);
    let occ = Occupancy::of(arch, &kernel.resources);
    // Per-partition energy: this partition's SMs over its own window.
    let energy = EnergyModel.compute(arch, &instr, seconds, sms, 0);
    KernelResult {
        cycles: end,
        seconds,
        sms_used: touched,
        tlp,
        max_blocks: occ.max_blocks(arch),
        instr,
        energy,
        flops: kernel.flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::K20C;
    use crate::occupancy::KernelResources;
    use crate::sim::dispatch::{simulate_kernel, DispatchPolicy};
    use crate::sim::trace::{CtaTrace, Op};

    fn kernel(grid: usize, name: &str) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            grid,
            resources: KernelResources {
                block_size: 128,
                regs_per_thread: 48,
                shmem_per_block: 4096,
            },
            trace: CtaTrace {
                prologue: vec![(Op::Ialu, 8), (Op::Ldg, 4), (Op::WaitMem, 1)],
                body: vec![(Op::Ldg, 2), (Op::Lds, 8), (Op::Ffma, 48), (Op::Bar, 1)],
                body_iters: 24,
                epilogue: vec![(Op::Stg, 4)],
            },
            flops: grid as u64 * 1_000_000,
        }
    }

    #[test]
    fn two_tenants_complete_all_work() {
        let (ka, kb) = (kernel(12, "a"), kernel(20, "b"));
        let r = simulate_concurrent(
            &K20C,
            &[
                Partition {
                    kernel: &ka,
                    sms: 6,
                    tlp: 2,
                },
                Partition {
                    kernel: &kb,
                    sms: 7,
                    tlp: 2,
                },
            ],
            false,
        );
        assert_eq!(r.kernels.len(), 2);
        let pa = ka
            .trace
            .warp_instr_counts()
            .scaled((ka.warps_per_cta() * ka.grid) as u64);
        assert_eq!(r.kernels[0].instr, pa);
        assert!(r.seconds >= r.kernels[0].seconds.max(r.kernels[1].seconds) - 1e-12);
    }

    #[test]
    fn colocation_is_slower_than_solo_but_finishes_both() {
        let k = kernel(26, "x");
        // Solo on all 13 SMs.
        let mut cache = SimCache::new();
        let solo = simulate_kernel(&K20C, &k, DispatchPolicy::RoundRobin, &mut cache);
        // Two copies side by side on 6+7 SMs.
        let r = simulate_concurrent(
            &K20C,
            &[
                Partition {
                    kernel: &k,
                    sms: 6,
                    tlp: 4,
                },
                Partition {
                    kernel: &k,
                    sms: 7,
                    tlp: 4,
                },
            ],
            false,
        );
        // Each copy has fewer SMs than solo, so it takes at least as long...
        assert!(r.seconds >= solo.seconds * 0.9);
        // ...but both finish within a reasonable factor (spatial sharing
        // works).
        assert!(
            r.seconds < solo.seconds * 4.0,
            "{} vs {}",
            r.seconds,
            solo.seconds
        );
    }

    #[test]
    fn gating_unused_sms_cuts_leakage() {
        let k = kernel(4, "small");
        let gated = simulate_concurrent(
            &K20C,
            &[Partition {
                kernel: &k,
                sms: 2,
                tlp: 2,
            }],
            true,
        );
        let ungated = simulate_concurrent(
            &K20C,
            &[Partition {
                kernel: &k,
                sms: 2,
                tlp: 2,
            }],
            false,
        );
        assert!(gated.energy.leakage_j < ungated.energy.leakage_j);
        assert!((gated.energy.dynamic_j - ungated.energy.dynamic_j).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "partitions need")]
    fn rejects_oversubscription() {
        let k = kernel(4, "big");
        simulate_concurrent(
            &K20C,
            &[
                Partition {
                    kernel: &k,
                    sms: 10,
                    tlp: 2,
                },
                Partition {
                    kernel: &k,
                    sms: 10,
                    tlp: 2,
                },
            ],
            false,
        );
    }

    #[test]
    fn bandwidth_is_shared_across_partitions() {
        // A memory-heavy kernel on few SMs: co-running with a second
        // partition (same total SMs powered) must not be faster than
        // running with the whole chip's bandwidth to itself.
        let k = kernel(6, "mem");
        let alone = simulate_concurrent(
            &K20C,
            &[Partition {
                kernel: &k,
                sms: 3,
                tlp: 2,
            }],
            true,
        );
        let shared = simulate_concurrent(
            &K20C,
            &[
                Partition {
                    kernel: &k,
                    sms: 3,
                    tlp: 2,
                },
                Partition {
                    kernel: &k,
                    sms: 10,
                    tlp: 2,
                },
            ],
            true,
        );
        assert!(shared.kernels[0].seconds >= alone.kernels[0].seconds);
    }
}
