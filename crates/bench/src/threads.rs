//! Worker-pool wiring for the harness binaries: every fig/table binary
//! accepts `--threads <N>` (or the `PCNN_THREADS` environment variable,
//! which `pcnn-parallel` reads itself) and pins the CPU worker pool to
//! that many threads for the whole run.

/// Extracts the thread count from `--threads <N>` / `--threads=<N>` args.
pub fn threads_flag(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            return it.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            return v.parse().ok();
        }
    }
    None
}

/// Call once at the top of a harness binary's `main`, next to
/// [`crate::trace::init_from_env`]. When `--threads <N>` was passed, the
/// process-wide pool override is installed; otherwise `pcnn-parallel`
/// falls back to `PCNN_THREADS` and then the machine's parallelism.
pub fn init_from_env() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(n) = threads_flag(&args) {
        pcnn_parallel::set_threads(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_forms() {
        assert_eq!(threads_flag(&s(&["--threads", "4"])), Some(4));
        assert_eq!(threads_flag(&s(&["--threads=8"])), Some(8));
        assert_eq!(
            threads_flag(&s(&["--gpu", "k20", "--threads", "2"])),
            Some(2)
        );
        assert_eq!(threads_flag(&s(&["--other"])), None);
        assert_eq!(threads_flag(&s(&["--threads", "notanum"])), None);
    }
}
