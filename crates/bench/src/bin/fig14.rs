//! Fig. 14: normalised energy per task x scheduler on the simulated K20c
//! and TX1 (normalised to the Energy-efficient scheduler, paper
//! convention).
//!
//! Paper shape: P-CNN consumes the least energy of the requirement-aware
//! schedulers (nearly matching Ideal); QPE+ < QPE on the interactive task
//! (power gating pays off when Util is low); QPE+ == QPE on saturated
//! tasks; P-CNN < QPE+ on accuracy-insensitive tasks (perforation).

use pcnn_bench::experiments::scheduler_matrix;
use pcnn_bench::TableWriter;
use pcnn_core::scheduler::SchedulerKind;

fn main() {
    let _trace = pcnn_bench::trace::init_from_env();
    pcnn_bench::threads::init_from_env();
    let scenarios = scheduler_matrix(4);
    let mut t = TableWriter::new(vec![
        "GPU",
        "task",
        "scheduler",
        "compute energy (J)",
        "idle (J)",
        "norm energy",
    ]);
    for s in &scenarios {
        let base = s.of(SchedulerKind::EnergyEfficient).report.energy.total_j();
        for (kind, ev) in &s.results {
            let e = ev.report.energy.total_j();
            t.row(vec![
                s.arch_name.to_string(),
                s.app.name.clone(),
                kind.name().to_string(),
                format!("{e:.3}"),
                format!("{:.2}", ev.report.idle_energy_j),
                format!("{:.2}", e / base),
            ]);
        }
    }
    t.print("Fig. 14: energy, normalised to the Energy-efficient scheduler");
}
