//! The paper's characterization tables as cross-crate assertions.

use pcnn_gpu::arch::{GTX_970M, JETSON_TX1, K20C, TITAN_X};
use pcnn_gpu::metrics::utilization;
use pcnn_gpu::occupancy::Occupancy;
use pcnn_kernels::sgemm::{grid_size, SgemmConfig, SgemmShape};
use pcnn_kernels::Library;
use pcnn_nn::spec::{alexnet, googlenet, vggnet};

/// Table V, digit-for-digit: Util of AlexNet conv layers, non-batching.
#[test]
fn table5_util_matches_paper_exactly() {
    let spec = alexnet();
    let expected: [(&pcnn_gpu::GpuArch, [f64; 5]); 3] = [
        (&K20C, [0.82, 0.62, 0.46, 0.23, 0.15]),
        (&GTX_970M, [0.60, 0.30, 0.30, 0.15, 0.10]),
        (&JETSON_TX1, [1.00, 0.75, 0.75, 0.75, 0.50]),
    ];
    for (arch, utils) in expected {
        for (conv, want) in spec.conv_layers().iter().zip(utils) {
            let shape = SgemmShape::of_conv(conv, 1);
            let v = Library::CuBlas.variant_for(arch, shape);
            let occ = Occupancy::of(arch, &SgemmConfig::natural(v).resources());
            let util = utilization(grid_size(shape, &v), occ.max_blocks(arch));
            assert!(
                (util - want).abs() < 0.005,
                "{} {}: util {util:.3} vs paper {want}",
                arch.name,
                conv.name
            );
        }
    }
}

/// Table IV's grid sizes for the dominated kernels.
#[test]
fn table4_grid_sizes_match_paper() {
    let spec = alexnet();
    let conv2 = SgemmShape::of_conv(spec.conv_layers()[1], 1);
    let conv5 = SgemmShape::of_conv(spec.conv_layers()[4], 1);
    let cases = [
        (&JETSON_TX1, Library::CuBlas, conv2, 12),
        (&JETSON_TX1, Library::CuBlas, conv5, 4),
        (&JETSON_TX1, Library::CuDnn, conv2, 92),
        (&JETSON_TX1, Library::CuDnn, conv5, 24),
        (&K20C, Library::CuBlas, conv2, 24),
        (&K20C, Library::CuBlas, conv5, 6),
        (&K20C, Library::CuDnn, conv2, 24),
        (&K20C, Library::CuDnn, conv5, 6),
    ];
    for (arch, lib, shape, want) in cases {
        let v = lib.variant_for(arch, shape);
        assert_eq!(grid_size(shape, &v), want, "{} {:?}", arch.name, lib);
    }
}

/// Table III's out-of-memory pattern, end-to-end through the library
/// memory policies.
#[test]
fn table3_oom_pattern_matches_paper() {
    let (alex, goog, vgg) = (alexnet(), googlenet(), vggnet());
    // (spec, training batch, [cuBLAS, cuDNN, Nervana] fits on TX1?)
    let rows = [
        (&alex, 128usize, [true, true, true]),
        (&goog, 64, [true, false, false]),
        (&vgg, 32, [true, false, false]),
    ];
    for (spec, batch, fits) in rows {
        for (lib, want) in Library::all().into_iter().zip(fits) {
            assert_eq!(
                lib.fits(&JETSON_TX1, spec, batch),
                want,
                "{} {} batch {batch} on TX1",
                lib.name(),
                spec.name
            );
        }
    }
    // Desktop and notebook GPUs fit everything (no x cells in those rows).
    for arch in [&TITAN_X, &GTX_970M] {
        for (spec, batch) in [(&alex, 128), (&goog, 64), (&vgg, 32)] {
            for lib in Library::all() {
                assert!(
                    lib.fits(arch, spec, batch),
                    "{} on {}",
                    spec.name,
                    arch.name
                );
            }
        }
    }
}

/// Section III.B's qualitative claim: non-batching latency is far below
/// batching latency, but throughput is far worse (Fig. 4 ratios < 1).
#[test]
fn batching_tradeoff_shape() {
    use pcnn_core::offline::library_schedule;
    use pcnn_core::runtime::simulate_schedule;
    let spec = alexnet();
    for arch in [&K20C, &JETSON_TX1] {
        let nb = simulate_schedule(arch, &library_schedule(arch, &spec, Library::CuBlas, 1));
        let b = simulate_schedule(arch, &library_schedule(arch, &spec, Library::CuBlas, 64));
        assert!(nb.seconds < b.seconds, "{}", arch.name);
        let ratio = (1.0 / nb.seconds) / (64.0 / b.seconds);
        assert!(
            ratio < 0.9,
            "{}: no-batching throughput ratio {ratio:.2} not < 0.9",
            arch.name
        );
    }
}
