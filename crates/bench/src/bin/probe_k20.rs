//! Maintenance probe: K20 batch-1 per-layer simulated times, P-CNN tuned
//! (PSM/optSM) vs cuBLAS (RR).

use pcnn_core::offline::{library_schedule, OfflineCompiler};
use pcnn_gpu::arch::K20C;
use pcnn_gpu::sim::dispatch::simulate_kernel;
use pcnn_gpu::sim::SimCache;
use pcnn_gpu::DispatchPolicy;
use pcnn_kernels::Library;
use pcnn_nn::spec::alexnet;

fn main() {
    let _trace = pcnn_bench::trace::init_from_env();
    pcnn_bench::threads::init_from_env();
    let spec = alexnet();
    let tuned = OfflineCompiler::new(&K20C, &spec)
        .try_compile_batch(1)
        .expect("valid batch");
    let lib = library_schedule(&K20C, &spec, Library::CuBlas, 1);
    println!("layer      tuned(PSM)            cuBLAS(RR)");
    for (t, l) in tuned.layers.iter().zip(&lib.layers) {
        let mut c1 = SimCache::new();
        let rt = simulate_kernel(&K20C, &t.kernel, t.psm_policy(), &mut c1);
        let mut c2 = SimCache::new();
        let rl = simulate_kernel(&K20C, &l.kernel, DispatchPolicy::RoundRobin, &mut c2);
        println!(
            "{:>6}  {:.3} ms (grid {:>3} tile {}x{} tlp {} sm {})   {:.3} ms (grid {:>3})",
            t.name,
            rt.seconds * 1e3 * t.groups as f64,
            t.kernel.grid,
            t.kernel.resources.block_size,
            t.kernel.resources.regs_per_thread,
            t.opt_tlp,
            t.opt_sm,
            rl.seconds * 1e3 * l.groups as f64,
            l.kernel.grid,
        );
    }
}
