//! `pcnn-serve` — an online serving runtime on top of the P-CNN
//! simulator.
//!
//! The paper optimises one workload at a time: the offline compiler picks
//! a batch and kernel plan, the runtime replays a trace. A deployed
//! inference service faces the harder, *online* version of the same
//! problem — a mix of real-time, interactive and background tenants
//! arriving open-loop against one or more GPUs. This crate closes that
//! gap with a deterministic event-driven serving simulator:
//!
//! * **Priority queues** ([`Server`]) — real-time ahead of interactive
//!   ahead of background, with a slack-fit rule so background batches
//!   only start when they cannot make a deadline queue late.
//! * **Deadline-aware dynamic batching** — each workload has a target
//!   batch (the largest whose unperforated pass fits `T_user`); a partial
//!   batch is force-dispatched at the latest moment the head request can
//!   still meet its deadline, using the offline time model
//!   ([`pcnn_core::runtime::simulate_schedule`]) as the latency oracle.
//! * **Admission control** ([`ServeWorkload::queue_capacity`]) — bounded
//!   per-workload queues; arrivals beyond capacity are *counted
//!   rejections*, never unbounded queueing, and a workload whose deadline
//!   is unmeetable even at batch 1 on the deepest ladder level is refused
//!   outright with [`pcnn_core::Error::InfeasibleSchedule`].
//! * **Graceful degradation** ([`DegradationLadder`]) — under overload
//!   the dispatcher walks the offline tuning path (higher perforation,
//!   hence smaller GEMMs and effectively fewer SMs needed), trading
//!   entropy for throughput, and walks back up with hysteresis once load
//!   drops.
//! * **Observability** ([`obs`]) — when telemetry is enabled, every
//!   request's admission → queue → dispatch → execute → complete
//!   lifecycle is traced in virtual time on per-GPU and per-workload
//!   tracks, windowed series (throughput, queue depth, deadline hit-rate,
//!   ladder level, oracle error) are exported, and per-workload
//!   [`SloPolicy`] objectives are evaluated per window with error-budget
//!   burn-rate alerts.
//!
//! * **Fleet serving** ([`fleet`]) — a heterogeneous fleet of
//!   [`Platform`]s, each bundling an architecture with its *own*
//!   offline-compiled ladder and capability profile, behind a pluggable
//!   [`Router`] seam (round-robin, platform-affinity, energy-aware,
//!   work-stealing placement). Each platform walks its ladder
//!   independently; arrivals stream lazily from [`pcnn_data::TraceSpec`]
//!   so million-request scenarios run in O(1) memory.
//!
//! Everything is virtual-time simulation: a run is a pure function of
//! its inputs, so reports ([`ServeReport::to_json`]) are byte-identical
//! across runs and thread counts. [`fifo_baseline`] replays the same
//! trace without any of the above for comparison.

pub mod baseline;
pub mod config;
pub mod fleet;
pub mod obs;
pub mod report;
pub mod server;

pub use baseline::{fifo_baseline, BaselineReport};
pub use config::{DegradationLadder, DegradationLevel, ServeWorkload, ServerConfig};
pub use fleet::{
    AffinityRouter, CandidateScore, Capability, EnergyAwareRouter, Platform, RoundRobinRouter,
    RouteCtx, RouteDecision, RouteReason, Router, RouterPolicy,
};
pub use obs::SloPolicy;
pub use report::{FleetSummary, GpuReport, LatencyAcc, LatencyStats, ServeReport, WorkloadReport};
pub use server::{CostOracle, Server, ServerBuilder};
