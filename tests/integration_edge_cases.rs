//! Edge-case integration tests across crates.

use pcnn_core::prelude::*;
use pcnn_data::RequestTrace;
use pcnn_gpu::arch::{JETSON_TX1, K20C};
use pcnn_gpu::sim::dispatch::simulate_kernel;
use pcnn_gpu::sim::SimCache;
use pcnn_gpu::{simulate_concurrent, DispatchPolicy, Partition};
use pcnn_kernels::Library;
use pcnn_nn::io::{load, save};
use pcnn_nn::spec::alexnet;

#[test]
fn batch_larger_than_trace_still_processes_everything() {
    // 3 images, batch 16: one undersized chunk, everything completes.
    let spec = alexnet();
    let compiler = OfflineCompiler::new(&K20C, &spec);
    let trace = RequestTrace::interactive(3, 0.1, 0.2, 9);
    let report = execute_trace(&K20C, &trace, 16, &mut &compiler).unwrap();
    assert_eq!(report.latencies.len(), 3);
    assert!(report.latencies.iter().all(|&l| l > 0.0));
}

#[test]
fn single_image_background_burst() {
    let spec = alexnet();
    let compiler = OfflineCompiler::new(&JETSON_TX1, &spec);
    let trace = RequestTrace::background(1);
    let report = execute_trace(&JETSON_TX1, &trace, 8, &mut &compiler).unwrap();
    assert_eq!(report.latencies.len(), 1);
    assert!(
        report.idle_energy_j.abs() < 1e-9,
        "no idle in a single burst"
    );
}

#[test]
fn psm_with_more_sms_than_grid_is_fine() {
    let spec = alexnet();
    let schedule = library_schedule(&K20C, &spec, Library::CuBlas, 1);
    let conv5 = schedule
        .layers
        .iter()
        .find(|l| l.name == "CONV5")
        .expect("CONV5 exists");
    // Grid 6 but 13 SMs requested: only 6 SMs can be touched.
    let mut cache = SimCache::new();
    let r = simulate_kernel(
        &K20C,
        &conv5.kernel,
        DispatchPolicy::PrioritySm {
            sms: 13,
            tlp: 1,
            power_gate: true,
        },
        &mut cache,
    );
    assert!(r.sms_used <= conv5.kernel.grid);
    assert!(r.seconds > 0.0);
}

#[test]
fn multitask_hosts_cnn_layer_next_to_background_tenant() {
    // The P-CNN story for released SMs (§III.D.2): CONV5 on its optSM
    // partition, a co-tenant on the freed SMs; both complete.
    let spec = alexnet();
    let tuned = OfflineCompiler::new(&K20C, &spec)
        .try_compile_batch(1)
        .unwrap();
    let conv5 = tuned
        .layers
        .iter()
        .find(|l| l.name == "CONV5")
        .expect("CONV5 exists");
    let co_tenant = tuned
        .layers
        .iter()
        .find(|l| l.name == "CONV3")
        .expect("CONV3 exists");
    let free_sms = K20C.n_sms - conv5.opt_sm;
    assert!(free_sms > 0, "CONV5 must release SMs on the K20");
    let r = simulate_concurrent(
        &K20C,
        &[
            Partition {
                kernel: &conv5.kernel,
                sms: conv5.opt_sm,
                tlp: conv5.opt_tlp,
            },
            Partition {
                kernel: &co_tenant.kernel,
                sms: free_sms,
                tlp: co_tenant.opt_tlp,
            },
        ],
        false,
    );
    assert_eq!(r.kernels.len(), 2);
    assert!(r.seconds > 0.0);
    // Both tenants' full work executed.
    for (res, plan) in r.kernels.iter().zip([conv5, co_tenant]) {
        let expected = plan
            .kernel
            .trace
            .warp_instr_counts()
            .scaled((plan.kernel.warps_per_cta() * plan.kernel.grid) as u64);
        assert_eq!(res.instr, expected, "{}", plan.name);
    }
}

#[test]
fn grouped_conv_kernel_covers_one_group() {
    let spec = alexnet();
    let conv2 = spec.conv_layers()[1].clone();
    assert_eq!(conv2.groups, 2);
    let k = Library::CuBlas.conv_kernel(&K20C, &conv2, 1);
    // One group's useful FLOPs = half the layer total.
    assert_eq!(k.flops * 2, conv2.flops());
}

#[test]
fn saved_model_survives_cross_module_use() {
    // Train-free roundtrip through the tuning stack: a loaded model must
    // produce an identical tuning path to the original.
    use pcnn_core::tuning::AccuracyTuner;
    use pcnn_nn::models::tiny_alexnet;
    use pcnn_tensor::Tensor;

    let net = tiny_alexnet(5);
    let mut buf = Vec::new();
    save(&net, &mut buf).unwrap();
    let loaded = load(&mut buf.as_slice()).unwrap();
    let calib = Tensor::from_fn(vec![8, 1, 32, 32], |i| ((i % 97) as f32) / 97.0 - 0.5);
    let a = AccuracyTuner::new(&net, &calib).tune(f64::MAX, 3);
    let b = AccuracyTuner::new(&loaded, &calib).tune(f64::MAX, 3);
    assert_eq!(a.entries.len(), b.entries.len());
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(x.plan, y.plan);
        assert!((x.entropy - y.entropy).abs() < 1e-9);
    }
}

#[test]
fn dvfs_scaled_platform_trades_time_for_energy() {
    let spec = alexnet();
    let slow = K20C.with_frequency_scale(0.5);
    let fast_cost = {
        let c = OfflineCompiler::new(&K20C, &spec);
        simulate_schedule(&K20C, &c.try_compile_batch(4).unwrap())
    };
    let slow_cost = {
        let c = OfflineCompiler::new(&slow, &spec);
        simulate_schedule(&slow, &c.try_compile_batch(4).unwrap())
    };
    // Half the clock: slower...
    assert!(slow_cost.seconds > fast_cost.seconds * 1.4);
    // ...but the dynamic (V^2 f-scaled) energy drops.
    assert!(
        slow_cost.energy.dynamic_j < fast_cost.energy.dynamic_j * 0.6,
        "dynamic {} vs {}",
        slow_cost.energy.dynamic_j,
        fast_cost.energy.dynamic_j
    );
}
