//! Heterogeneous fleet acceptance tests: per-platform cost oracles,
//! router-policy outcomes on a mixed K20c + Jetson TX1 fleet, fleet
//! determinism, and the streaming event loop.
//!
//! Every threshold is derived from measured simulator costs, never
//! hard-coded seconds.

use pcnn_core::prelude::*;
use pcnn_data::{TraceSpec, WorkloadKind};
use pcnn_gpu::arch::{JETSON_TX1, K20C};
use pcnn_gpu::GpuArch;
use pcnn_nn::spec::{ConvSpec, FcSpec, LayerSpec, NetworkSpec};
use pcnn_serve::{
    CostOracle, DegradationLadder, Platform, RouterPolicy, ServeWorkload, Server, ServerConfig,
};

fn tiny_net() -> NetworkSpec {
    NetworkSpec {
        name: "TinyFleet".into(),
        input_elems: 16 * 32 * 32,
        layers: vec![
            LayerSpec::Conv(ConvSpec::new("CONV1", 64, 3, 16, 32, 32, 1, 1, 1)),
            LayerSpec::Conv(ConvSpec::new("CONV2", 128, 3, 64, 16, 16, 1, 1, 1)),
            LayerSpec::Fc(FcSpec {
                name: "FC".into(),
                in_features: 128 * 8 * 8,
                out_features: 10,
            }),
        ],
    }
}

/// Unperforated cost of a batch-`b` pass on `arch`.
fn cost_on(arch: &GpuArch, spec: &NetworkSpec, b: usize) -> NetworkCost {
    let schedule = OfflineCompiler::new(arch, spec)
        .try_compile_batch(b)
        .unwrap();
    simulate_schedule(arch, &schedule)
}

/// An interactive workload with an explicit deadline rescaled to the
/// simulated timescale.
fn interactive(
    spec_name: &str,
    trace: TraceSpec,
    t_user: f64,
    capacity: usize,
    rate: f64,
) -> ServeWorkload {
    let app = AppSpec {
        name: spec_name.into(),
        kind: WorkloadKind::Interactive,
        data_rate: rate,
        accuracy_sensitive: false,
    };
    let mut w = ServeWorkload::new(app, trace, capacity);
    w.req.t_imperceptible = Some(t_user);
    w.req.t_unusable = Some(20.0 * t_user);
    w
}

#[test]
fn platforms_at_different_rungs_predict_different_costs() {
    let spec = tiny_net();
    let n = spec.conv_layers().len();
    // Same silicon, different ladders: p0's rung 1 perforates lightly,
    // p1's rung 1 aggressively. The old shared-ladder cost model read one
    // ladder for both and would predict identical costs.
    let platforms = vec![
        Platform::new(&K20C, DegradationLadder::uniform(n, 0.9, &[(0.25, 1.05)])),
        Platform::new(&K20C, DegradationLadder::uniform(n, 0.9, &[(0.60, 1.50)])),
    ];
    let mut oracle = CostOracle::new(&platforms, &spec);
    let c0 = oracle.cost(0, 1, 8).unwrap();
    let c1 = oracle.cost(1, 1, 8).unwrap();
    assert!(
        c1.seconds < c0.seconds,
        "deeper perforation must predict a faster batch: {} vs {}",
        c1.seconds,
        c0.seconds
    );
    // At the shared unperforated level the platforms agree.
    let b0 = oracle.cost(0, 0, 8).unwrap();
    let b1 = oracle.cost(1, 0, 8).unwrap();
    assert_eq!(b0.seconds, b1.seconds);
}

/// The canonical mixed-fleet deadline scenario: periodic frames whose
/// forced dispatch leaves exactly the reference K20c's batch-1 latency of
/// slack. A capability-blind router that hands such a dispatch to the TX1
/// misses the deadline by the platforms' batch-1 gap; a platform-aware
/// one keeps every frame on silicon that can hold it.
fn deadline_scenario(spec: &NetworkSpec, policy: RouterPolicy) -> pcnn_serve::ServeReport {
    let n = spec.conv_layers().len();
    let c1_k20 = cost_on(&K20C, spec, 1).seconds;
    let c1_tx1 = cost_on(&JETSON_TX1, spec, 1).seconds;
    assert!(
        c1_tx1 > c1_k20 * 1.001,
        "scenario needs a real batch-1 gap: {c1_tx1} vs {c1_k20}"
    );
    let fps = 1.0 / (1.5 * c1_k20);
    let frames = ServeWorkload::new(
        AppSpec::video_surveillance(fps),
        TraceSpec::real_time(60, fps),
        64,
    );
    Server::builder(spec)
        .platform(Platform::new(&K20C, DegradationLadder::none(n, 0.9)))
        .platform(Platform::new(&JETSON_TX1, DegradationLadder::none(n, 0.9)))
        .config(
            ServerConfig::default()
                .with_max_batch(8)
                .with_degradation(false)
                .with_router(policy),
        )
        .workload(frames)
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn affinity_beats_round_robin_on_deadlines() {
    let spec = tiny_net();
    let rr = deadline_scenario(&spec, RouterPolicy::RoundRobin);
    let affinity = deadline_scenario(&spec, RouterPolicy::Affinity);

    let (r, a) = (&rr.workloads[0], &affinity.workloads[0]);
    assert_eq!(a.deadline_total, 60);
    assert_eq!(
        a.deadlines_met, a.deadline_total,
        "affinity missed deadlines it could meet"
    );
    assert!(
        a.deadlines_met > r.deadlines_met,
        "affinity {} must strictly beat round-robin {}",
        a.deadlines_met,
        r.deadlines_met
    );
    // Round-robin really did burn frames on the TX1.
    assert!(rr.gpus[1].images > 0);
    // Affinity kept deadline traffic off the platform that cannot hold
    // it.
    assert_eq!(affinity.gpus[1].images, 0);
    assert_eq!(rr.router, "round-robin");
    assert_eq!(affinity.router, "affinity");
}

/// A latency-slack scenario: bursts of one full target batch, spaced so
/// the fleet is usually idle when one lands. Both platforms meet the
/// deadline comfortably, so the routing choice is pure energy.
fn slack_scenario(spec: &NetworkSpec, policy: RouterPolicy) -> pcnn_serve::ServeReport {
    let n = spec.conv_layers().len();
    let c8_tx1 = cost_on(&JETSON_TX1, spec, 8);
    let t_user = 4.0 * c8_tx1.seconds;
    let burst_rate = 1.0 / (3.0 * c8_tx1.seconds);
    let workload = interactive(
        "fleet slack",
        TraceSpec::bursty(WorkloadKind::Interactive, 30, 8, burst_rate, 23),
        t_user,
        128,
        burst_rate * 8.0,
    );
    Server::builder(spec)
        .platform(Platform::new(&K20C, DegradationLadder::none(n, 0.9)))
        .platform(Platform::new(&JETSON_TX1, DegradationLadder::none(n, 0.9)))
        .config(
            ServerConfig::default()
                .with_max_batch(8)
                .with_degradation(false)
                .with_router(policy),
        )
        .workload(workload)
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn energy_aware_dominates_round_robin_on_joules_at_equal_soc() {
    let spec = tiny_net();
    // Scenario validity: the TX1 really is the lower-joule platform at
    // the batch size the routers place.
    let (k, t) = (cost_on(&K20C, &spec, 8), cost_on(&JETSON_TX1, &spec, 8));
    assert!(t.energy.total_j() < k.energy.total_j());

    let rr = slack_scenario(&spec, RouterPolicy::RoundRobin);
    let ea = slack_scenario(&spec, RouterPolicy::EnergyAware);

    // Same service on both policies…
    assert_eq!(
        rr.workloads[0].deadlines_met,
        rr.workloads[0].deadline_total
    );
    assert_eq!(
        ea.workloads[0].deadlines_met,
        ea.workloads[0].deadline_total
    );
    // …strictly fewer compute joules…
    assert!(
        ea.total_energy_j < rr.total_energy_j,
        "energy-aware {} J vs round-robin {} J",
        ea.total_energy_j,
        rr.total_energy_j
    );
    // …at equal-or-better SoC (SoC = time x accuracy / energy, so lower
    // joules at full time/accuracy satisfaction scores higher).
    let (rr_soc, ea_soc) = (
        rr.workloads[0].soc.as_ref().unwrap().score,
        ea.workloads[0].soc.as_ref().unwrap().score,
    );
    assert!(
        ea_soc >= rr_soc,
        "energy-aware SoC {ea_soc} vs round-robin {rr_soc}"
    );
    assert!(ea.fleet.joules_per_image < rr.fleet.joules_per_image);
}

#[test]
fn platforms_walk_their_ladders_independently() {
    let spec = tiny_net();
    let n = spec.conv_layers().len();
    let c1_k20 = cost_on(&K20C, &spec, 1).seconds;
    let c1_tx1 = cost_on(&JETSON_TX1, &spec, 1).seconds;
    assert!(c1_tx1 > c1_k20 * 1.001, "scenario needs a batch-1 gap");
    // The deadline-scenario frames again, but with degradation enabled:
    // round-robin still hands every other forced dispatch to the TX1,
    // which can only hold the deadline by walking its own ladder — while
    // the K20c serves the same workload undegraded at level 0.
    let fps = 1.0 / (1.5 * c1_k20);
    let frames = ServeWorkload::new(
        AppSpec::video_surveillance(fps),
        TraceSpec::real_time(60, fps),
        64,
    );
    let report = Server::builder(&spec)
        .platform(Platform::new(&K20C, DegradationLadder::default_ladder(n)))
        .platform(Platform::new(
            &JETSON_TX1,
            DegradationLadder::default_ladder(n),
        ))
        .config(
            ServerConfig::default()
                .with_max_batch(8)
                .with_router(RouterPolicy::RoundRobin),
        )
        .workload(frames)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let (k20, tx1) = (&report.gpus[0], &report.gpus[1]);
    assert!(k20.images > 0 && tx1.images > 0);
    // The K20c never left the unperforated level…
    assert!(
        k20.images_at_level[1..].iter().all(|&i| i == 0),
        "K20c degraded: {:?}",
        k20.images_at_level
    );
    // …while the TX1 walked its own ladder on the same workload.
    assert!(
        tx1.images_at_level[1..].iter().sum::<usize>() > 0,
        "TX1 never degraded: {:?}",
        tx1.images_at_level
    );
    let w = &report.workloads[0];
    assert!(w.final_level >= 1);
    // Degradation turned the TX1's would-be misses into (degraded) hits,
    // at an entropy cost the report makes visible.
    assert_eq!(w.deadlines_met, w.deadline_total);
    assert!(w.mean_entropy > 0.90);
}

#[test]
fn work_stealing_drains_background_faster_than_affinity() {
    let spec = tiny_net();
    let n = spec.conv_layers().len();
    let run = |policy: RouterPolicy| {
        let bg = ServeWorkload::new(AppSpec::image_tagging(), TraceSpec::background(128), 256);
        Server::builder(&spec)
            .platform(Platform::new(&K20C, DegradationLadder::none(n, 0.9)))
            .platform(Platform::new(&JETSON_TX1, DegradationLadder::none(n, 0.9)))
            .config(
                ServerConfig::default()
                    .with_max_batch(8)
                    .with_degradation(false)
                    .with_router(policy),
            )
            .workload(bg)
            .build()
            .unwrap()
            .run()
            .unwrap()
    };
    let pinned = run(RouterPolicy::Affinity);
    let stealing = run(RouterPolicy::WorkStealing);
    // Affinity pins background work to the big platform; stealing lets
    // the idle TX1 take batches while the K20c is busy.
    assert_eq!(pinned.gpus[1].images, 0);
    assert!(stealing.gpus[1].images > 0);
    assert!(
        stealing.makespan_s < pinned.makespan_s,
        "stealing {} vs pinned {}",
        stealing.makespan_s,
        pinned.makespan_s
    );
}

#[test]
fn fleet_reports_are_byte_identical_per_seed() {
    let spec = tiny_net();
    let n = spec.conv_layers().len();
    let c8_k20 = cost_on(&K20C, &spec, 8).seconds;
    let run = |policy: RouterPolicy| {
        let t_user = 5.0 * c8_k20;
        let rate = 1.2 * 8.0 / c8_k20;
        let mix = interactive(
            "fleet determinism",
            TraceSpec::poisson(WorkloadKind::Interactive, 120, rate, 42),
            t_user,
            128,
            rate,
        );
        let bg = ServeWorkload::new(AppSpec::image_tagging(), TraceSpec::background(64), 128);
        Server::builder(&spec)
            .platform(Platform::new(&K20C, DegradationLadder::default_ladder(n)))
            .platform(Platform::new(
                &JETSON_TX1,
                DegradationLadder::default_ladder(n),
            ))
            .config(
                ServerConfig::default()
                    .with_max_batch(8)
                    .with_router(policy),
            )
            .workload(mix)
            .workload(bg)
            .build()
            .unwrap()
            .run()
            .unwrap()
            .to_json()
    };
    for policy in RouterPolicy::all() {
        assert_eq!(
            run(policy),
            run(policy),
            "{} run not deterministic",
            policy.name()
        );
    }
}

#[test]
fn streaming_loop_serves_large_lazy_traces() {
    let spec = tiny_net();
    let n = spec.conv_layers().len();
    let c8 = cost_on(&K20C, &spec, 8).seconds;
    let t_user = 5.0 * c8;
    let rate = 1.5 * 8.0 / c8;
    const N: usize = 50_000;
    // The trace is never materialized: the server pulls arrivals from the
    // spec one at a time and holds only in-flight requests.
    let workload = interactive(
        "fleet stream",
        TraceSpec::poisson(WorkloadKind::Interactive, N, rate, 9),
        t_user,
        128,
        rate,
    );
    let report = Server::builder(&spec)
        .platform(Platform::new(&K20C, DegradationLadder::default_ladder(n)))
        .config(ServerConfig::default().with_max_batch(8))
        .workload(workload)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let w = &report.workloads[0];
    assert_eq!(w.requests, N);
    assert_eq!(w.images, N);
    assert_eq!(w.served_images + w.rejected_images, N);
    assert!(w.served_images > 0);
    // Percentile stats came out of the constant-space accumulator.
    assert!(w.latency.p99 >= w.latency.p50);
    assert!(w.latency.max >= w.latency.p99);
}
