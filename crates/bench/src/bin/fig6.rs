//! Fig. 6: instruction breakdown — the fraction of floating-point
//! instructions (computation density) for different SGEMM sub-matrix
//! sizes.
//!
//! Paper shape: bigger tiles have a higher FP fraction (more work per
//! loaded byte), which is why cuDNN's small 32x32 tile on TX1 has higher
//! occupancy but lower performance.

use pcnn_bench::TableWriter;
use pcnn_kernels::sgemm::{build_kernel, SgemmConfig, SgemmShape, ALL_TILES};

fn main() {
    let _trace = pcnn_bench::trace::init_from_env();
    pcnn_bench::threads::init_from_env();
    // AlexNet CONV2's per-group GEMM as the workload.
    let shape = SgemmShape {
        m: 128,
        n: 729,
        k: 1200,
    };
    let mut t = TableWriter::new(vec!["Sub-matrix", "FP insts", "other insts", "FP fraction"]);
    for v in ALL_TILES {
        let k = build_kernel(shape, &SgemmConfig::natural(v), "fig6");
        let c = k.trace.warp_instr_counts();
        t.row(vec![
            format!("{}x{}", v.tile_m, v.tile_n),
            c.ffma.to_string(),
            (c.total() - c.ffma).to_string(),
            format!("{:.1}%", c.fp_fraction() * 100.0),
        ]);
    }
    t.print("Fig. 6: instruction breakdown by sub-matrix size (shape: FP fraction grows with tile area)");
}
