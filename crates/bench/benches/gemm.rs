//! Criterion benchmarks of the numerical substrate: blocked GEMM,
//! im2col lowering, and a full perforated conv forward pass.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pcnn_nn::models::tiny_alexnet;
use pcnn_nn::PerforationPlan;
use pcnn_tensor::{gemm, im2col, Conv2dGeometry, Tensor};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &(m, n, k) in &[
        (64usize, 64usize, 64usize),
        (128, 729, 300),
        (256, 256, 256),
        // AlexNet CONV2 as an im2col GEMM — the headline shape for the
        // packed-microkernel/multicore speedup (see BENCH_gemm.json).
        (256, 729, 1200),
    ] {
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32).collect();
        group.bench_function(format!("{m}x{n}x{k}"), |bch| {
            bch.iter(|| {
                let mut cbuf = vec![0.0f32; m * n];
                gemm(m, n, k, black_box(&a), black_box(&b), &mut cbuf);
                black_box(cbuf);
            })
        });
    }
    group.finish();
}

/// One thread versus the machine's full pool on the CONV2 shape: the
/// ratio of these two entries is the multicore scaling headline.
fn bench_gemm_threads(c: &mut Criterion) {
    let (m, n, k) = (256, 729, 1200);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32).collect();
    let mut group = c.benchmark_group("gemm-threads");
    let full = pcnn_parallel::current_threads();
    for threads in [1, full] {
        group.bench_function(format!("{m}x{n}x{k} t{threads}"), |bch| {
            pcnn_parallel::with_threads(threads, || {
                bch.iter(|| {
                    let mut cbuf = vec![0.0f32; m * n];
                    gemm(m, n, k, black_box(&a), black_box(&b), &mut cbuf);
                    black_box(cbuf);
                })
            })
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let geom = Conv2dGeometry::new(16, 32, 32, 3, 1, 1);
    let input: Vec<f32> = (0..16 * 32 * 32).map(|i| i as f32).collect();
    c.bench_function("im2col 16x32x32 k3", |bch| {
        bch.iter(|| {
            let mut cols = vec![0.0f32; geom.patch_len() * geom.out_positions()];
            im2col(&geom, black_box(&input), &mut cols);
            black_box(cols);
        })
    });
}

fn bench_forward(c: &mut Criterion) {
    let net = tiny_alexnet(10);
    let input = Tensor::from_fn(vec![4, 1, 32, 32], |i| (i as f32 * 0.01).sin());
    let identity = PerforationPlan::identity(net.conv_count());
    let perforated = PerforationPlan::from_rates(vec![0.5; net.conv_count()]);
    c.bench_function("forward tiny_alexnet b4 full", |bch| {
        bch.iter(|| black_box(net.forward(black_box(&input), &identity).unwrap()))
    });
    c.bench_function("forward tiny_alexnet b4 perforated 0.5", |bch| {
        bch.iter(|| black_box(net.forward(black_box(&input), &perforated).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_gemm,
    bench_gemm_threads,
    bench_im2col,
    bench_forward
);
criterion_main!(benches);
