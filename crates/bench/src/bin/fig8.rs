//! Fig. 8: computing throughput vs batch size across platforms, with the
//! optimal batch size (the knee where `GridSize` reaches `maxBlocks` and
//! throughput plateaus) marked per platform.
//!
//! Paper shape: throughput rises with batch then saturates; the knee moves
//! right with GPU size (bigger GPUs need bigger batches to fill).

use pcnn_bench::TableWriter;
use pcnn_core::offline::OfflineCompiler;
use pcnn_core::runtime::simulate_schedule;
use pcnn_gpu::arch::all_platforms;
use pcnn_nn::spec::alexnet;

fn main() {
    let _trace = pcnn_bench::trace::init_from_env();
    pcnn_bench::threads::init_from_env();
    let spec = alexnet();
    let batches = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let mut t = TableWriter::new(vec![
        "GPU",
        "b=1",
        "b=2",
        "b=4",
        "b=8",
        "b=16",
        "b=32",
        "b=64",
        "b=128",
        "opt batch",
    ]);
    for arch in all_platforms() {
        let compiler = OfflineCompiler::new(arch, &spec);
        let mut row = vec![arch.name.to_string()];
        let mut tps = Vec::new();
        for &b in &batches {
            let schedule = compiler.try_compile_batch(b).expect("valid batch");
            let c = simulate_schedule(arch, &schedule);
            let tp = b as f64 / c.seconds;
            tps.push(tp);
            row.push(format!("{tp:.0}"));
        }
        // The knee: first batch reaching 90% of the best throughput.
        let best = tps.iter().copied().fold(0.0, f64::max);
        let knee = batches
            .iter()
            .zip(&tps)
            .find(|(_, &tp)| tp >= 0.9 * best)
            .map(|(&b, _)| b)
            .unwrap_or(128);
        row.push(knee.to_string());
        t.row(row);
    }
    t.print("Fig. 8: AlexNet throughput (images/s) vs batch size (shape: saturating curves; optimal batch grows with GPU size)");
}
