//! End-to-end tests of `pcnn profile` and `pcnn obs diff`: phase
//! coverage of the forward wall time, binary-level determinism of the
//! JSON profile document, regression attribution against a doctored
//! baseline, and the zero-cost guarantee of the disabled profiler.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;

use pcnn_bench::profile;

fn pcnn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pcnn"))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pcnn-profile-{}-{name}", std::process::id()))
}

/// The profiler's counter tables are process-global, so tests that
/// enable or reset them must not interleave.
static PROFILE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn phase_times_cover_at_least_95_percent_of_forward_wall() {
    let _guard = PROFILE_LOCK.lock().unwrap();
    let net = profile::pick_model("alexnet").unwrap();
    // Timing on a shared container is noisy; a single unlucky run can be
    // preempted mid-layer, so take the best of three attempts.
    let best = (0..3)
        .map(|_| {
            let run = pcnn_parallel::with_threads(1, || {
                profile::run_profile(&net, profile::BASELINE_BATCH, 10)
            })
            .unwrap();
            run.coverage()
        })
        .fold(0.0f64, f64::max);
    assert!(
        best >= 0.95,
        "phase coverage {:.1}% below the 95% attribution bar",
        best * 100.0
    );
}

#[test]
fn profile_json_is_byte_identical_across_binary_runs() {
    let doc_a = tmp("doc-a.json");
    let doc_b = tmp("doc-b.json");
    for doc in [&doc_a, &doc_b] {
        let out = pcnn()
            .args(["profile", "alexnet"])
            .arg(format!("--json={}", doc.display()))
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "profile run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("phase coverage:"),
            "no coverage line: {stdout}"
        );
    }
    let a = std::fs::read(&doc_a).unwrap();
    let b = std::fs::read(&doc_b).unwrap();
    std::fs::remove_file(&doc_a).ok();
    std::fs::remove_file(&doc_b).ok();
    assert_eq!(a, b, "profile documents differ at the binary level");
    // The document must also match the committed baseline's generator,
    // which is what `pcnn obs check` regenerates as a fresh candidate.
    let fresh = profile::profile_json(&profile::baseline_run().unwrap());
    assert_eq!(String::from_utf8(a).unwrap(), fresh);
}

/// Adds 1.0 ms to the first number following `prefix` (searching from
/// `from`), returning the edited string and the match position.
fn bump_ms(doc: &str, from: usize, prefix: &str) -> (String, usize) {
    let at = doc[from..].find(prefix).expect(prefix) + from + prefix.len();
    let end = at + doc[at..].find(',').unwrap();
    let value: f64 = doc[at..end].parse().unwrap();
    let mut edited = String::with_capacity(doc.len() + 2);
    edited.push_str(&doc[..at]);
    edited.push_str(&format!("{:.6}", value + 1.0));
    edited.push_str(&doc[end..]);
    (edited, at)
}

#[test]
fn obs_diff_names_the_doctored_layer_and_phase_as_top_culprit() {
    let baseline = repo_root().join("BENCH_profile.json");
    let doc = std::fs::read_to_string(&baseline).unwrap();

    // Doctor a 1 ms regression into L00 conv's microkernel phase.
    let (doc, _) = bump_ms(&doc, 0, "\"total_modelled_ms\": ");
    let layer_at = doc.find("\"layer\": \"L00 conv\"").unwrap();
    let (doc, layer_at) = bump_ms(&doc, layer_at, "\"modelled_ms\": ");
    let (doc, _) = {
        let phase_at = doc[layer_at..]
            .find("\"phase\": \"microkernel\"")
            .expect("L00 conv has a microkernel phase")
            + layer_at;
        bump_ms(&doc, phase_at, "\"modelled_ms\": ")
    };

    let doctored = tmp("doctored-profile.json");
    std::fs::write(&doctored, doc).unwrap();
    let out = pcnn()
        .args(["obs", "diff"])
        .arg(&baseline)
        .arg(&doctored)
        .output()
        .unwrap();
    std::fs::remove_file(&doctored).ok();
    assert!(
        out.status.success(),
        "obs diff failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("(+1.000 ms)"),
        "wrong total delta: {stdout}"
    );
    let first_row = stdout
        .lines()
        .skip_while(|l| !l.starts_with('-'))
        .nth(1)
        .unwrap_or_default();
    assert!(
        first_row.starts_with("L00 conv"),
        "doctored layer is not the top culprit: {stdout}"
    );
    assert!(
        first_row.contains("microkernel"),
        "doctored phase not attributed: {stdout}"
    );
}

#[test]
fn missing_and_corrupt_inputs_exit_nonzero_with_the_path() {
    let out = pcnn()
        .args(["obs", "/nonexistent-trace.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("/nonexistent-trace.json"),
        "error does not name the path: {stderr}"
    );

    let corrupt = tmp("corrupt.json");
    std::fs::write(&corrupt, "{\"layers\": [").unwrap();
    let baseline = repo_root().join("BENCH_profile.json");
    let out = pcnn()
        .args(["obs", "diff"])
        .arg(&baseline)
        .arg(&corrupt)
        .output()
        .unwrap();
    std::fs::remove_file(&corrupt).ok();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid JSON"),
        "corrupt input not reported as a parse error: {stderr}"
    );
}

#[test]
fn disabled_profiler_records_nothing_on_the_forward_path() {
    let _guard = PROFILE_LOCK.lock().unwrap();
    pcnn_profile::set_enabled(false);
    pcnn_profile::reset();
    let net = profile::pick_model("alexnet").unwrap();
    let input = profile::profile_input(&net, 1);
    let plan = pcnn_nn::PerforationPlan::identity(net.conv_count());
    net.forward(&input, &plan).unwrap();
    assert!(
        pcnn_profile::snapshot().is_empty(),
        "disabled profiler accumulated per-layer state"
    );
    assert!(pcnn_profile::layer_scope(0, "conv").is_none());
    assert!(pcnn_profile::phase_span(pcnn_profile::Phase::Microkernel).is_none());
}
