//! Serving reports: per-workload latency percentiles, SoC, rejection and
//! degradation counts, and a deterministic JSON rendering.

use std::collections::BTreeMap;

use pcnn_core::prelude::Soc;
use pcnn_data::WorkloadKind;

/// Nearest-rank latency percentiles over one workload's completed
/// requests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Mean latency (s).
    pub mean: f64,
    /// Median (s).
    pub p50: f64,
    /// 95th percentile (s).
    pub p95: f64,
    /// 99th percentile (s).
    pub p99: f64,
    /// Worst request (s).
    pub max: f64,
}

impl LatencyStats {
    /// Computes nearest-rank percentiles. Returns the zero stats for an
    /// empty sample.
    pub fn of(latencies: &[f64]) -> Self {
        if latencies.is_empty() {
            return Self::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let rank = |q: f64| sorted[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        Self {
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            max: sorted[n - 1],
        }
    }
}

/// Streaming latency accumulator: constant-size state regardless of how
/// many samples it absorbs, so a million-request run never materializes a
/// per-request latency vector.
///
/// Mean and max are exact. Percentiles come from a sparse log-spaced
/// histogram with 128 sub-buckets per octave (relative width ≈ 0.54 %, so
/// the reported quantile is within ~0.3 % of the true sample), evaluated
/// by the same nearest-rank rule as [`LatencyStats::of`].
#[derive(Debug, Clone, Default)]
pub struct LatencyAcc {
    count: u64,
    sum: f64,
    max: f64,
    /// Bucket index → sample count; index = `floor(log2(l) * 128)`.
    buckets: BTreeMap<i64, u64>,
    zeros: u64,
}

impl LatencyAcc {
    const SUB: f64 = 128.0;

    /// Absorbs one latency sample (non-negative seconds).
    pub fn record(&mut self, latency_s: f64) {
        self.count += 1;
        self.sum += latency_s;
        self.max = self.max.max(latency_s);
        if latency_s <= 0.0 {
            self.zeros += 1;
            return;
        }
        let idx = (latency_s.log2() * Self::SUB).floor() as i64;
        *self.buckets.entry(idx).or_insert(0) += 1;
    }

    /// Samples absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Collapses the histogram to nearest-rank percentile stats. Returns
    /// the zero stats when no sample was recorded.
    pub fn stats(&self) -> LatencyStats {
        if self.count == 0 {
            return LatencyStats::default();
        }
        let n = self.count;
        let rank = |q: f64| {
            let target = (((q * n as f64).ceil() as u64).clamp(1, n)) - 1;
            if target < self.zeros {
                return 0.0;
            }
            let mut seen = self.zeros;
            for (&idx, &c) in &self.buckets {
                seen += c;
                if seen > target {
                    // Bucket midpoint in log space; the top bucket's
                    // midpoint can overshoot the true maximum, so clamp.
                    return ((idx as f64 + 0.5) / Self::SUB).exp2().min(self.max);
                }
            }
            self.max
        };
        LatencyStats {
            mean: self.sum / n as f64,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            max: self.max,
        }
    }
}

/// Per-workload serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// Application name.
    pub name: String,
    /// Task class.
    pub kind: WorkloadKind,
    /// Requests in the trace.
    pub requests: usize,
    /// Images in the trace.
    pub images: usize,
    /// Images that completed inference.
    pub served_images: usize,
    /// Images refused at admission (bounded queue full).
    pub rejected_images: usize,
    /// Requests with at least one rejected image.
    pub rejected_requests: usize,
    /// The batch size the dispatcher aims for.
    pub target_batch: usize,
    /// `T_user` in seconds (`None` for background work).
    pub deadline_s: Option<f64>,
    /// Fully-served requests that met `T_user`.
    pub deadlines_met: usize,
    /// Fully-served requests with a deadline.
    pub deadline_total: usize,
    /// Latency percentiles over fully-served requests.
    pub latency: LatencyStats,
    /// Image-weighted mean output entropy across the ladder levels used.
    pub mean_entropy: f64,
    /// Ladder escalations (level +1) while serving this workload.
    pub degrade_up: usize,
    /// Ladder restorations (level −1).
    pub degrade_down: usize,
    /// Ladder level in force when the trace drained.
    pub final_level: usize,
    /// Compute energy attributed to this workload (J).
    pub energy_j: f64,
    /// Satisfaction-of-CNN over the characteristic response time, or
    /// `None` when nothing was served.
    pub soc: Option<Soc>,
}

/// Per-platform serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuReport {
    /// Architecture name.
    pub name: String,
    /// Batches dispatched to this platform.
    pub dispatches: usize,
    /// Images served by this platform.
    pub images: usize,
    /// Seconds spent computing.
    pub busy_s: f64,
    /// Compute energy (J).
    pub energy_j: f64,
    /// Idle energy over the non-busy span (J).
    pub idle_energy_j: f64,
    /// Images served at each rung of *this platform's* ladder — the
    /// ladder-occupancy profile. Lengths differ across a heterogeneous
    /// fleet.
    pub images_at_level: Vec<usize>,
}

/// Fleet-wide rollup: one point on the SoC/energy Pareto front for the
/// routing policy that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSummary {
    /// Images served across the fleet.
    pub served_images: usize,
    /// Deadline hits across all deadline-bearing workloads.
    pub deadlines_met: usize,
    /// Deadline-bearing requests fully served.
    pub deadline_total: usize,
    /// Fleet compute energy (J).
    pub compute_j: f64,
    /// Fleet idle energy (J).
    pub idle_j: f64,
    /// Total joules (compute + idle) per served image.
    pub joules_per_image: f64,
    /// Unweighted mean SoC score over workloads that report one.
    pub mean_soc: f64,
}

/// The full serving-run report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One entry per workload, in submission order.
    pub workloads: Vec<WorkloadReport>,
    /// One entry per platform, in configuration order.
    pub gpus: Vec<GpuReport>,
    /// First arrival to last completion (s).
    pub makespan_s: f64,
    /// Total compute energy (J).
    pub total_energy_j: f64,
    /// Total idle energy (J).
    pub total_idle_energy_j: f64,
    /// Whether degradation was enabled.
    pub degradation: bool,
    /// The dispatcher's global batch cap.
    pub max_batch: usize,
    /// The routing policy that placed the batches.
    pub router: &'static str,
    /// Fleet-wide SoC/energy rollup.
    pub fleet: FleetSummary,
}

impl ServeReport {
    /// Total rejected images across workloads.
    pub fn total_rejected(&self) -> usize {
        self.workloads.iter().map(|w| w.rejected_images).sum()
    }

    /// Recomputes the fleet rollup from the per-workload and per-platform
    /// entries. Called once after those are final.
    pub(crate) fn fleet_summary(&self) -> FleetSummary {
        let served_images: usize = self.workloads.iter().map(|w| w.served_images).sum();
        let deadlines_met = self.workloads.iter().map(|w| w.deadlines_met).sum();
        let deadline_total = self.workloads.iter().map(|w| w.deadline_total).sum();
        let socs: Vec<f64> = self
            .workloads
            .iter()
            .filter_map(|w| w.soc.as_ref().map(|s| s.score))
            .collect();
        let mean_soc = if socs.is_empty() {
            0.0
        } else {
            socs.iter().sum::<f64>() / socs.len() as f64
        };
        let total_j = self.total_energy_j + self.total_idle_energy_j;
        FleetSummary {
            served_images,
            deadlines_met,
            deadline_total,
            compute_j: self.total_energy_j,
            idle_j: self.total_idle_energy_j,
            joules_per_image: if served_images > 0 {
                total_j / served_images as f64
            } else {
                0.0
            },
            mean_soc,
        }
    }

    /// Deterministic JSON rendering: fixed key order, no wall-clock
    /// values, shortest-roundtrip float formatting. Byte-identical for
    /// identical runs.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"degradation\": ");
        s.push_str(if self.degradation { "true" } else { "false" });
        s.push_str(&format!(",\n  \"max_batch\": {}", self.max_batch));
        s.push_str(&format!(",\n  \"router\": \"{}\"", self.router));
        s.push_str(&format!(",\n  \"makespan_s\": {}", self.makespan_s));
        s.push_str(&format!(",\n  \"total_energy_j\": {}", self.total_energy_j));
        s.push_str(&format!(
            ",\n  \"total_idle_energy_j\": {}",
            self.total_idle_energy_j
        ));
        s.push_str(&format!(
            ",\n  \"fleet\": {{\"served_images\": {}, \"deadlines_met\": {}, \"deadline_total\": {}, \"compute_j\": {}, \"idle_j\": {}, \"joules_per_image\": {}, \"mean_soc\": {}}}",
            self.fleet.served_images,
            self.fleet.deadlines_met,
            self.fleet.deadline_total,
            self.fleet.compute_j,
            self.fleet.idle_j,
            self.fleet.joules_per_image,
            self.fleet.mean_soc
        ));
        s.push_str(",\n  \"gpus\": [");
        for (i, g) in self.gpus.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let levels = g
                .images_at_level
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"dispatches\": {}, \"images\": {}, \"busy_s\": {}, \"energy_j\": {}, \"idle_energy_j\": {}, \"images_at_level\": [{}]}}",
                g.name, g.dispatches, g.images, g.busy_s, g.energy_j, g.idle_energy_j, levels
            ));
        }
        s.push_str("\n  ],\n  \"workloads\": [");
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\n      \"name\": \"{}\",\n      \"kind\": \"{}\"",
                w.name,
                kind_str(w.kind)
            ));
            s.push_str(&format!(
                ",\n      \"requests\": {}, \"images\": {}, \"served_images\": {}",
                w.requests, w.images, w.served_images
            ));
            s.push_str(&format!(
                ",\n      \"rejected_images\": {}, \"rejected_requests\": {}",
                w.rejected_images, w.rejected_requests
            ));
            s.push_str(&format!(",\n      \"target_batch\": {}", w.target_batch));
            match w.deadline_s {
                Some(d) => s.push_str(&format!(",\n      \"deadline_s\": {d}")),
                None => s.push_str(",\n      \"deadline_s\": null"),
            }
            s.push_str(&format!(
                ",\n      \"deadlines_met\": {}, \"deadline_total\": {}",
                w.deadlines_met, w.deadline_total
            ));
            s.push_str(&format!(
                ",\n      \"latency_s\": {{\"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                w.latency.mean, w.latency.p50, w.latency.p95, w.latency.p99, w.latency.max
            ));
            s.push_str(&format!(",\n      \"mean_entropy\": {}", w.mean_entropy));
            s.push_str(&format!(
                ",\n      \"degrade_up\": {}, \"degrade_down\": {}, \"final_level\": {}",
                w.degrade_up, w.degrade_down, w.final_level
            ));
            s.push_str(&format!(",\n      \"energy_j\": {}", w.energy_j));
            match &w.soc {
                Some(soc) => s.push_str(&format!(
                    ",\n      \"soc\": {{\"time\": {}, \"accuracy\": {}, \"score\": {}}}",
                    soc.time, soc.accuracy, soc.score
                )),
                None => s.push_str(",\n      \"soc\": null"),
            }
            s.push_str("\n    }");
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

fn kind_str(kind: WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::RealTime => "real_time",
        WorkloadKind::Interactive => "interactive",
        WorkloadKind::Background => "background",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let lats: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::of(&lats);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_zero() {
        assert_eq!(LatencyStats::of(&[]), LatencyStats::default());
    }

    #[test]
    fn single_sample_is_its_own_percentiles() {
        let s = LatencyStats::of(&[0.25]);
        assert_eq!(s.p50, 0.25);
        assert_eq!(s.p99, 0.25);
        assert_eq!(s.max, 0.25);
    }

    #[test]
    fn streaming_acc_tracks_exact_percentiles_closely() {
        let lats: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        let exact = LatencyStats::of(&lats);
        let mut acc = LatencyAcc::default();
        for &l in &lats {
            acc.record(l);
        }
        let approx = acc.stats();
        assert_eq!(acc.count(), 1000);
        assert!((approx.mean - exact.mean).abs() < 1e-12);
        assert_eq!(approx.max, exact.max);
        for (a, e) in [
            (approx.p50, exact.p50),
            (approx.p95, exact.p95),
            (approx.p99, exact.p99),
        ] {
            assert!(
                (a - e).abs() / e < 0.01,
                "quantile drifted: approx {a}, exact {e}"
            );
        }
    }

    #[test]
    fn streaming_acc_handles_empty_and_zero() {
        assert_eq!(LatencyAcc::default().stats(), LatencyStats::default());
        let mut acc = LatencyAcc::default();
        acc.record(0.0);
        acc.record(0.5);
        let s = acc.stats();
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.max, 0.5);
    }
}
